"""Tests for the discrete-event serving simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import CloudInstance, ResourceConfiguration, instance_type
from repro.errors import ConfigurationError
from repro.pruning import PruneSpec
from repro.serving import (
    BatchPolicy,
    ServingSimulator,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.batcher import PendingQueue
from repro.serving.events import EventQueue


def _simulator(
    instance: str = "p2.8xlarge",
    spec: PruneSpec | None = None,
    max_batch: int = 64,
    max_wait_s: float = 0.2,
) -> ServingSimulator:
    return ServingSimulator(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        ResourceConfiguration([CloudInstance(instance_type(instance))]),
        spec or PruneSpec.unpruned(),
        BatchPolicy(max_batch=max_batch, max_wait_s=max_wait_s),
    )


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")


class TestArrivals:
    def test_poisson_rate(self):
        arr = poisson_arrivals(100.0, 100.0, seed=0)
        assert arr.size == pytest.approx(10_000, rel=0.1)
        assert np.all(np.diff(arr) >= 0)
        assert arr[-1] < 100.0

    def test_poisson_deterministic(self):
        a = poisson_arrivals(50.0, 10.0, seed=4)
        b = poisson_arrivals(50.0, 10.0, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_uniform_spacing(self):
        arr = uniform_arrivals(10.0, 2.0)
        assert arr.size == 20
        np.testing.assert_allclose(np.diff(arr), 0.1)

    def test_bursty_mean_rate_preserved(self):
        arr = bursty_arrivals(100.0, 200.0, seed=1)
        assert arr.size == pytest.approx(20_000, rel=0.15)

    def test_bursty_is_burstier_than_poisson(self):
        """Coefficient of variation of per-second counts must exceed
        the Poisson baseline."""
        def cv(arr):
            counts = np.bincount(arr.astype(int), minlength=200)[:200]
            return counts.std() / counts.mean()

        poisson = poisson_arrivals(100.0, 200.0, seed=2)
        bursty = bursty_arrivals(
            100.0, 200.0, burst_factor=8.0, seed=2
        )
        assert cv(bursty) > 1.5 * cv(poisson)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0)
        with pytest.raises(ValueError):
            uniform_arrivals(10.0, -1.0)
        with pytest.raises(ValueError):
            bursty_arrivals(10.0, 10.0, burst_factor=0.5)
        with pytest.raises(ValueError):
            bursty_arrivals(10.0, 10.0, burst_fraction=1.5)


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=4, max_wait_s=-1.0)

    def test_full_batch_dispatches(self):
        q = PendingQueue()
        for i in range(4):
            q.push(i, 0.0)
        assert q.should_dispatch(0.0, BatchPolicy(max_batch=4, max_wait_s=9))

    def test_timeout_dispatches(self):
        q = PendingQueue()
        q.push(0, 0.0)
        policy = BatchPolicy(max_batch=100, max_wait_s=0.5)
        assert not q.should_dispatch(0.4, policy)
        assert q.should_dispatch(0.5, policy)

    def test_float_rounding_at_deadline(self):
        # regression: 1.2 - 1.0 < 0.2 in binary floats
        q = PendingQueue()
        q.push(0, 1.0)
        policy = BatchPolicy(max_batch=100, max_wait_s=0.2)
        assert q.should_dispatch(1.0 + 0.2, policy)

    def test_take_is_fifo(self):
        q = PendingQueue()
        for i in range(5):
            q.push(i, float(i))
        assert [r for r, _ in q.take(3)] == [0, 1, 2]
        assert len(q) == 2


class TestServingSimulator:
    def test_every_request_served_once(self):
        sim = _simulator()
        arr = poisson_arrivals(100.0, 20.0, seed=3)
        report = sim.run(arr)
        assert report.requests == arr.size
        assert np.all(report.latencies_s > 0)
        assert report.batch_sizes.sum() == arr.size

    def test_latency_at_least_service_time(self):
        sim = _simulator(max_wait_s=0.0, max_batch=1)
        report = sim.run(np.array([0.0]))
        single = caffenet_time_model().batching_model(
            PruneSpec.unpruned(), instance_type("p2.8xlarge").gpu
        ).batch_time(1)
        assert report.latencies_s[0] == pytest.approx(single)

    def test_utilisation_bounded(self):
        sim = _simulator()
        report = sim.run(poisson_arrivals(150.0, 20.0, seed=5))
        assert 0.0 < report.utilisation <= 1.0

    def test_pruning_cuts_latency(self):
        arr = poisson_arrivals(200.0, 30.0, seed=6)
        base = _simulator().run(arr)
        pruned = _simulator(
            spec=PruneSpec({"conv1": 0.3, "conv2": 0.5})
        ).run(arr)
        assert pruned.p99 < base.p99
        assert pruned.accuracy.top5 < base.accuracy.top5

    def test_overload_grows_queueing_delay(self):
        light = _simulator().run(poisson_arrivals(50.0, 20.0, seed=7))
        heavy = _simulator().run(poisson_arrivals(320.0, 20.0, seed=7))
        assert heavy.p99 > light.p99

    def test_bigger_fleet_lower_latency_under_load(self):
        arr = poisson_arrivals(300.0, 20.0, seed=8)
        small = _simulator("p2.8xlarge").run(arr)
        config = ResourceConfiguration(
            [CloudInstance(instance_type("p2.16xlarge"))]
        )
        big = ServingSimulator(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            config,
            PruneSpec.unpruned(),
            BatchPolicy(max_batch=64, max_wait_s=0.2),
        ).run(arr)
        assert big.p99 <= small.p99

    def test_miss_rate_monotone_in_slo(self):
        report = _simulator().run(poisson_arrivals(200.0, 20.0, seed=9))
        assert report.miss_rate(0.5) >= report.miss_rate(2.0)

    def test_cost_covers_whole_duration(self):
        report = _simulator().run(np.array([0.0, 5.0]))
        rate = instance_type("p2.8xlarge").price_per_hour
        assert report.cost >= report.duration_s * rate / 3600.0 - 1e-9

    def test_rejects_empty_and_unsorted(self):
        sim = _simulator()
        with pytest.raises(ConfigurationError):
            sim.run(np.array([]))
        with pytest.raises(ConfigurationError):
            sim.run(np.array([2.0, 1.0]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_given_arrivals(self, seed):
        arr = poisson_arrivals(100.0, 5.0, seed=seed)
        a = _simulator().run(arr)
        b = _simulator().run(arr)
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)
        assert a.cost == b.cost

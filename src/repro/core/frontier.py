"""Quantitative comparison of Pareto frontiers.

The paper argues by pointing at frontiers; comparing two of them
(greedy-found vs exhaustive, even-split vs proportional-split) needs
numbers.  For the 2-D (maximise accuracy, minimise objective) setting:

* :func:`hypervolume` — area dominated by a frontier relative to a
  reference point (bigger = better frontier);
* :func:`coverage` — fraction of frontier A's points weakly dominated
  by frontier B (Zitzler's C-metric);
* :func:`additive_epsilon` — smallest objective inflation that makes
  frontier B dominate frontier A everywhere.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["hypervolume", "coverage", "additive_epsilon"]

Point = tuple[float, float]  # (accuracy, objective)


def _clean(front: Sequence[Point]) -> np.ndarray:
    if not front:
        raise ValueError("frontier must be non-empty")
    arr = np.asarray(front, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("frontier must be (accuracy, objective) pairs")
    # sort by accuracy descending; keep the running objective minimum
    order = np.argsort(-arr[:, 0], kind="stable")
    arr = arr[order]
    keep = []
    best = np.inf
    for acc, obj in arr:
        if obj < best:
            keep.append((acc, obj))
            best = obj
    return np.asarray(keep)


def hypervolume(
    front: Sequence[Point], ref_accuracy: float, ref_objective: float
) -> float:
    """Dominated area between the frontier and a reference point.

    The reference must be dominated by every frontier point
    (``ref_accuracy`` at most the minimum accuracy, ``ref_objective``
    at least the maximum objective); the area is then the union of
    rectangles ``[ref_acc, acc_i] x [obj_i, ref_obj]``.
    """
    arr = _clean(front)
    if ref_accuracy > arr[:, 0].min() or ref_objective < arr[:, 1].max():
        raise ValueError(
            "reference point must be dominated by the whole frontier"
        )
    # scan from the highest-accuracy point; each point owns the
    # accuracy strip between itself and the next (lower-accuracy) point
    volume = 0.0
    prev_obj = ref_objective
    for acc, obj in arr:
        volume += (acc - ref_accuracy) * (prev_obj - obj)
        prev_obj = obj
    return volume


def _weakly_dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Does point ``a`` weakly dominate point ``b``?"""
    return a[0] >= b[0] and a[1] <= b[1]


def coverage(
    covered: Sequence[Point], by: Sequence[Point]
) -> float:
    """C(by, covered): fraction of ``covered`` weakly dominated by ``by``."""
    covered_arr = _clean(covered)
    by_arr = _clean(by)
    hit = 0
    for point in covered_arr:
        if any(_weakly_dominates(candidate, point) for candidate in by_arr):
            hit += 1
    return hit / len(covered_arr)


def additive_epsilon(
    approx: Sequence[Point], reference: Sequence[Point]
) -> float:
    """Smallest ``eps`` such that every reference point is weakly
    dominated by some approx point after relaxing the approx frontier by
    ``eps`` (accuracy decreased, objective increased).

    Zero means ``approx`` already covers ``reference``; the value is the
    worst-case quality gap in the objectives' own units.
    """
    approx_arr = _clean(approx)
    ref_arr = _clean(reference)
    eps = 0.0
    for point in ref_arr:
        best = np.inf
        for candidate in approx_arr:
            need = max(
                point[0] - candidate[0],  # accuracy shortfall
                candidate[1] - point[1],  # objective excess
                0.0,
            )
            best = min(best, need)
        eps = max(eps, best)
    return eps

"""Cross-validation: the discrete-event simulator vs closed forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import CloudInstance, ResourceConfiguration, instance_type
from repro.perf.device import K80
from repro.pruning import PruneSpec
from repro.serving import BatchPolicy, ServingSimulator, poisson_arrivals
from repro.serving.analytic import BatchServiceModel


def _pieces(max_batch=32, max_wait=0.05, instance="p2.8xlarge"):
    tm = caffenet_time_model()
    itype = instance_type(instance)
    policy = BatchPolicy(max_batch=max_batch, max_wait_s=max_wait)
    batching = tm.batching_model(PruneSpec.unpruned(), itype.gpu)
    analytic = BatchServiceModel(
        batching=batching, workers=itype.gpus, policy=policy
    )
    simulator = ServingSimulator(
        tm,
        caffenet_accuracy_model(),
        ResourceConfiguration([CloudInstance(itype)]),
        PruneSpec.unpruned(),
        policy,
    )
    return analytic, simulator


class TestAnalyticModel:
    def test_capacity_formula(self):
        analytic, _ = _pieces()
        b = 32
        per_worker = b / analytic.batching.batch_time(b)
        assert analytic.capacity() == pytest.approx(8 * per_worker)

    def test_utilisation_linear_below_capacity(self):
        analytic, _ = _pieces()
        cap = analytic.capacity()
        assert analytic.utilisation(cap / 2) == pytest.approx(0.5)
        assert analytic.utilisation(2 * cap) == 1.0

    def test_stability(self):
        analytic, _ = _pieces()
        assert analytic.is_stable(analytic.capacity() * 0.9)
        assert not analytic.is_stable(analytic.capacity() * 1.1)

    def test_validation(self):
        analytic, _ = _pieces()
        with pytest.raises(ValueError):
            BatchServiceModel(analytic.batching, 0, analytic.policy)
        with pytest.raises(ValueError):
            analytic.utilisation(0.0)
        with pytest.raises(ValueError):
            analytic.effective_service_per_request(0.5)


class TestDESAgreement:
    def test_light_load_latency_matches(self):
        """Sparse arrivals: every request waits max_wait then rides a
        single-element batch."""
        analytic, simulator = _pieces(max_batch=32, max_wait=0.05)
        arrivals = np.arange(50) * 10.0  # one request every 10 s
        report = simulator.run(arrivals)
        assert report.mean_latency == pytest.approx(
            analytic.light_load_latency(), rel=0.02
        )
        assert report.mean_batch == pytest.approx(1.0)

    def test_zero_wait_light_load_is_pure_service(self):
        analytic, simulator = _pieces(max_batch=32, max_wait=0.0)
        arrivals = np.arange(30) * 10.0
        report = simulator.run(arrivals)
        assert report.mean_latency == pytest.approx(
            analytic.batching.batch_time(1), rel=0.02
        )

    def test_utilisation_matches_at_moderate_load(self):
        """At moderate load, busy fraction = rate x per-request service
        at the *observed* mean batch width / workers."""
        analytic, simulator = _pieces()
        cap = analytic.capacity()
        rate = 0.5 * cap
        arrivals = poisson_arrivals(rate, 120.0, seed=17)
        report = simulator.run(arrivals)
        predicted = (
            rate
            * analytic.effective_service_per_request(report.mean_batch)
            / analytic.workers
        )
        assert report.utilisation == pytest.approx(predicted, rel=0.15)
        # partial batches are less efficient, so the DES runs hotter
        # than the full-batch lower bound
        assert report.utilisation >= analytic.utilisation(rate) - 0.02

    def test_unstable_load_builds_queue(self):
        analytic, simulator = _pieces()
        rate = 1.3 * analytic.capacity()
        arrivals = poisson_arrivals(rate, 60.0, seed=18)
        report = simulator.run(arrivals)
        # overloaded: served later than offered, latency grows with time
        first_half = report.latencies_s[: report.requests // 2]
        second_half = report.latencies_s[report.requests // 2 :]
        assert second_half.mean() > first_half.mean()
        assert report.utilisation > 0.95

    def test_saturated_batches_run_full(self):
        analytic, simulator = _pieces()
        rate = 1.2 * analytic.capacity()
        arrivals = poisson_arrivals(rate, 30.0, seed=19)
        report = simulator.run(arrivals)
        # once overloaded, almost every batch is at max width
        assert report.mean_batch > 0.9 * 32

"""Declarative fleet evaluation: ``FleetSpec`` + the content-keyed cache.

:mod:`repro.core.evalspace` gave the batch grid one discipline — a
frozen, content-keyed spec evaluated once process-wide.  This module
gives routed serving fleets the same treatment so the planner can ask
"cheapest fleet meeting availability A and p99 L" without re-simulating
a fleet it has already measured:

* :class:`FleetWorkload` — a seeded description of the offered load
  (arrival process + per-request accuracy floors and deadlines),
  reproducible from its fields alone;
* :class:`FleetSpec` — models + replicas + routing + admission, with a
  :meth:`~FleetSpec.cache_key` built from model *fingerprints* (not
  object identity), mirroring
  :meth:`repro.core.evalspace.SpaceSpec.cache_key`;
* :func:`evaluate_fleet` — run the spec's router over the workload,
  memoised in a process-wide cache (``fleet.cache_hits`` /
  ``fleet.cache_misses`` counters, 32-entry LRU-by-insertion like the
  evaluation-space cache).

The planner query itself lives in
:func:`repro.core.planner.cheapest_fleet`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.accuracy_model import AccuracyModel
from repro.errors import ConfigurationError
from repro.obs import get_metrics
from repro.perf.latency import CalibratedTimeModel
from repro.serving.arrivals import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.router import (
    AdmissionPolicy,
    FleetReport,
    FleetRouter,
    ReplicaSpec,
)

__all__ = [
    "FleetSpec",
    "FleetWorkload",
    "clear_fleet_cache",
    "evaluate_fleet",
    "fleet_cache_info",
]

_GENERATORS = {
    "poisson": poisson_arrivals,
    "uniform": uniform_arrivals,
    "bursty": bursty_arrivals,
}

_CACHE_MAX_ENTRIES = 32

#: (FleetSpec key, FleetWorkload key) -> FleetReport, process-wide.
_CACHE: dict[tuple, FleetReport] = {}


@dataclass(frozen=True)
class FleetWorkload:
    """A reproducible offered load for fleet evaluation.

    Attributes
    ----------
    rate_per_s, duration_s, arrival, seed:
        Parameters of the arrival process (``poisson`` / ``uniform`` /
        ``bursty``), regenerated identically from the seed.
    floors:
        Mixture of per-request Top-5 accuracy floors as
        ``(floor_percent, fraction)`` pairs; fractions must sum to 1.
        Empty means no request carries a requirement (floor 0), which
        is also what non-tiered routing policies assume.
    deadlines:
        Mixture of per-request latency deadlines as
        ``(deadline_s, fraction)`` pairs; fractions must sum to 1.
        Empty means no request carries a deadline (infinity), which
        is what every policy other than ``adaptive`` assumes.
    """

    rate_per_s: float
    duration_s: float
    arrival: str = "poisson"
    seed: int = 0
    floors: tuple[tuple[float, float], ...] = ()
    deadlines: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.arrival not in _GENERATORS:
            raise ConfigurationError(
                f"unknown arrival process {self.arrival!r}; "
                f"available: {sorted(_GENERATORS)}"
            )
        if self.rate_per_s <= 0 or self.duration_s <= 0:
            raise ConfigurationError(
                "rate and duration must be positive"
            )
        if self.floors:
            total = sum(fraction for _, fraction in self.floors)
            if abs(total - 1.0) > 1e-9:
                raise ConfigurationError(
                    f"floor fractions must sum to 1, got {total}"
                )
        if self.deadlines:
            if any(deadline <= 0 for deadline, _ in self.deadlines):
                raise ConfigurationError(
                    "deadlines must be positive seconds"
                )
            total = sum(fraction for _, fraction in self.deadlines)
            if abs(total - 1.0) > 1e-9:
                raise ConfigurationError(
                    f"deadline fractions must sum to 1, got {total}"
                )

    # ------------------------------------------------------------------
    def arrivals(self) -> np.ndarray:
        """The (sorted) arrival times this workload describes."""
        return _GENERATORS[self.arrival](
            self.rate_per_s, self.duration_s, seed=self.seed
        )

    def accuracy_floors(self, n: int) -> np.ndarray | None:
        """Per-request floors for ``n`` arrivals (``None`` if no
        mixture is configured).  Drawn from a seed derived from the
        workload's own, so arrivals and floors stay independent."""
        if not self.floors:
            return None
        rng = np.random.default_rng(self.seed + 0x0F100)
        values = np.array([f for f, _ in self.floors])
        weights = np.array([w for _, w in self.floors])
        return rng.choice(values, size=n, p=weights / weights.sum())

    def deadlines_s(self, n: int) -> np.ndarray | None:
        """Per-request deadlines for ``n`` arrivals (``None`` if no
        mixture is configured).  Drawn from a seed derived from the
        workload's own — distinct from the floors' derivation — so
        arrivals, floors, and deadlines are mutually independent."""
        if not self.deadlines:
            return None
        rng = np.random.default_rng(self.seed + 0x0D1E5)
        values = np.array([d for d, _ in self.deadlines])
        weights = np.array([w for _, w in self.deadlines])
        return rng.choice(values, size=n, p=weights / weights.sum())

    def cache_key(self) -> tuple:
        """Content key for the fleet evaluation cache."""
        return (
            self.rate_per_s,
            self.duration_s,
            self.arrival,
            self.seed,
            self.floors,
            self.deadlines,
        )


@dataclass(frozen=True)
class FleetSpec:
    """A declarative routed fleet, ready for cached evaluation.

    The serving counterpart of
    :class:`repro.core.evalspace.SpaceSpec`: everything needed to build
    a :class:`~repro.serving.router.FleetRouter` plus a content key, so
    equal fleets are simulated once per process no matter how many
    planner queries touch them.
    """

    time_model: CalibratedTimeModel
    accuracy_model: AccuracyModel
    replicas: tuple[ReplicaSpec, ...]
    routing: str = "round-robin"
    admission: AdmissionPolicy | None = None
    engine: str = "columnar"

    def router(self) -> FleetRouter:
        """Build the imperative router this spec describes."""
        return FleetRouter(
            self.time_model,
            self.accuracy_model,
            self.replicas,
            routing=self.routing,
            admission=self.admission,
            engine=self.engine,
        )

    @property
    def hourly_rate(self) -> float:
        """Total fleet $/hour (each replica's billing override
        honoured) — the static cost axis of a planner comparison."""
        return sum(
            r.hourly_rate
            if r.hourly_rate is not None
            else r.configuration.total_price_per_hour
            for r in self.replicas
        )

    def cache_key(self) -> tuple:
        """Content key: equal fleets share one evaluation process-wide.

        ``engine`` is deliberately absent — both engines produce
        byte-identical reports (tested), so a fleet evaluated under
        one must hit the cache entry written under the other.
        """
        return (
            self.time_model.fingerprint(),
            self.accuracy_model.fingerprint(),
            tuple(r.key() for r in self.replicas),
            self.routing,
            self.admission,
        )


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
def evaluate_fleet(
    spec: FleetSpec, workload: FleetWorkload
) -> FleetReport:
    """Evaluate ``spec`` under ``workload`` once; content-equal pairs
    hit the shared cache (``fleet.cache_hits``/``fleet.cache_misses``
    counters record the traffic)."""
    key = (spec.cache_key(), workload.cache_key())
    cached = _CACHE.get(key)
    if cached is not None:
        get_metrics().counter("fleet.cache_hits").inc()
        return cached
    get_metrics().counter("fleet.cache_misses").inc()
    arrivals = workload.arrivals()
    floors = workload.accuracy_floors(arrivals.size)
    deadlines = workload.deadlines_s(arrivals.size)
    report = spec.router().run(
        arrivals, floors=floors, deadlines=deadlines
    )
    while len(_CACHE) >= _CACHE_MAX_ENTRIES:
        _CACHE.pop(next(iter(_CACHE)))  # dicts iterate oldest-first
    _CACHE[key] = report
    return report


def clear_fleet_cache() -> None:
    """Drop every cached :class:`FleetReport` (tests, benchmarks)."""
    _CACHE.clear()


def fleet_cache_info() -> dict[str, int]:
    """Current cache occupancy (entries and total served requests)."""
    return {
        "entries": len(_CACHE),
        "served": sum(r.served for r in _CACHE.values()),
    }

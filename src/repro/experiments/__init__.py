"""Regeneration of every table and figure in the paper's evaluation.

One module per artefact; each exposes ``run()`` returning a structured
result and ``render(result)`` producing the text table/series the paper
reports.  ``repro.experiments.runner.run_all()`` executes the whole
evaluation and is what ``EXPERIMENTS.md`` is generated from.

| Paper artefact | Module |
|---|---|
| Table 1 (Caffenet layers)          | :mod:`repro.experiments.tables` |
| Table 3 (EC2 catalog)              | :mod:`repro.experiments.tables` |
| Fig. 2 (three-stage approach)      | :mod:`repro.experiments.fig2_pipeline` |
| Fig. 3 (layer time distribution)   | :mod:`repro.experiments.fig3_time_distribution` |
| Fig. 4 (single-inference vs prune) | :mod:`repro.experiments.fig4_single_inference` |
| Fig. 5 (parallel inference)        | :mod:`repro.experiments.fig5_parallel_inference` |
| Fig. 6 (Caffenet layer sweeps)     | :mod:`repro.experiments.fig6_caffenet_sweeps` |
| Fig. 7 (Googlenet layer sweeps)    | :mod:`repro.experiments.fig7_googlenet_sweeps` |
| Fig. 8 (multi-layer pruning)       | :mod:`repro.experiments.fig8_multilayer` |
| Fig. 9 (time-accuracy Pareto)      | :mod:`repro.experiments.fig9_time_pareto` |
| Fig. 10 (cost-accuracy Pareto)     | :mod:`repro.experiments.fig10_cost_pareto` |
| Fig. 11 (TAR over prune grid)      | :mod:`repro.experiments.fig11_tar` |
| Fig. 12 (CAR across types)         | :mod:`repro.experiments.fig12_car` |
| Algorithm 1 complexity/quality     | :mod:`repro.experiments.algorithm1` |
"""

from repro.experiments.engine import (
    REGISTRY,
    EngineRun,
    Experiment,
    ExperimentResult,
    run_experiments,
)
from repro.experiments.runner import run_all

__all__ = [
    "EngineRun",
    "Experiment",
    "ExperimentResult",
    "REGISTRY",
    "run_all",
    "run_experiments",
]


def __getattr__(name: str):
    if name == "ExperimentOutput":  # deprecated alias; warns in runner
        from repro.experiments import runner

        return runner.ExperimentOutput
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

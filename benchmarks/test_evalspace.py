"""Benchmark: the unified evaluation core vs the legacy per-point loop.

Claims under test:

* grid evaluation through :func:`repro.core.evalspace.evaluate` returns
  exactly the rows the historical ``for spec: for config: run()`` loop
  produced (same order, same floats);
* time-model memoization bounds the expensive
  :meth:`CalibratedTimeModel.time_fraction` work by the number of
  *degrees x instance types*, not grid points: the Figure 9/10 grid
  (60 x 63 = 3 780 points over 3 p2 types) must cost at most
  60 x 3 = 180 time-model evaluations — the ``perf.time_model_evals``
  counter enforces it;
* a second content-equal request is a pure cache hit (no simulations).
"""

from __future__ import annotations

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import P2_TYPES, CloudSimulator
from repro.core.config_space import enumerate_configurations
from repro.core.evalspace import SpaceSpec, clear_space_cache, evaluate
from repro.obs import MetricsRegistry, scoped_observability
from repro.pruning.schedule import caffenet_variant_set


def _study_grid():
    return (
        caffenet_variant_set(),
        enumerate_configurations(P2_TYPES, max_per_type=3),
    )


def test_grid_evaluation(benchmark):
    degrees, configurations = _study_grid()
    images = 20_000_000

    def evaluate_grid():
        clear_space_cache()
        registry = MetricsRegistry()
        with scoped_observability(metrics=registry):
            space = evaluate(
                SpaceSpec.build(
                    caffenet_time_model(),
                    caffenet_accuracy_model(),
                    degrees,
                    configurations,
                    images,
                )
            )
        return space, registry

    space, registry = benchmark.pedantic(
        evaluate_grid, rounds=3, iterations=1
    )
    assert len(space) == len(degrees) * len(configurations) == 3780

    # memoization bound: <= degrees x instance types, not grid points
    evals = registry.counter("perf.time_model_evals").value
    assert 0 < evals <= len(degrees) * len(P2_TYPES)

    # row-for-row identical to the legacy nested loop
    simulator = CloudSimulator(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    legacy = [
        simulator.run(degree.spec, config, images)
        for degree in degrees[:3]
        for config in configurations
    ]
    n = len(configurations)
    for flat, expected in enumerate(legacy[: 3 * n]):
        got = space.results[flat]
        assert (got.spec, got.configuration) == (
            expected.spec,
            expected.configuration,
        )
        assert got.time_s == expected.time_s
        assert got.cost == expected.cost
        assert got.accuracy == expected.accuracy

    # content-equal re-request: pure hit, zero new simulations
    registry2 = MetricsRegistry()
    with scoped_observability(metrics=registry2):
        again = evaluate(
            SpaceSpec.build(
                caffenet_time_model(),
                caffenet_accuracy_model(),
                degrees,
                configurations,
                images,
            )
        )
    assert again is space
    assert registry2.counter("evalspace.cache_hits").value == 1
    assert registry2.counter("cloud.simulations").value == 0

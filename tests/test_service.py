"""The planning control plane: routes, error mapping, concurrency.

``PlanningService.dispatch`` is exercised without sockets for the
route/error matrix; a real ``PlanningServer`` + ``PlanningClient``
pair covers the HTTP path end to end.  The concurrency test pins the
single-flight contract: N parallel identical ``/v1/plan`` requests
cost exactly one evaluation (1 miss, N-1 hits).
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import ApiError, PlanRequest, PlanningClient, clear_api_caches
from repro.obs import MetricsRegistry, Tracer, scoped_observability
from repro.service import PlanningServer, PlanningService

#: a tiny grid so service tests never pay for the full catalog
SMALL = {"catalog": ("p2.16xlarge", "p2.8xlarge"), "instances_per_type": 2}


def _body(**kwargs) -> bytes:
    request = PlanRequest(**{**SMALL, **kwargs})
    return json.dumps(request.to_dict(), sort_keys=True).encode("utf-8")


@pytest.fixture()
def service():
    return PlanningService()


class TestDispatch:
    def test_plan_route_answers_200(self, service):
        status, content_type, payload = service.dispatch(
            "POST", "/v1/plan", _body(target=78.0, deadline_h=6.0)
        )
        assert status == 200
        assert content_type == "application/json"
        answer = json.loads(payload)
        assert answer["schema"] == "repro.api/v1"
        assert answer["kind"] == "min_budget"

    def test_healthz(self, service):
        status, _, payload = service.dispatch("GET", "/v1/healthz")
        assert status == 200
        health = json.loads(payload)
        assert health["status"] == "ok"
        assert "space_cache" in health and "fleet_cache" in health

    def test_metrics_is_openmetrics(self, service):
        status, content_type, payload = service.dispatch(
            "GET", "/v1/metrics"
        )
        assert status == 200
        assert content_type.startswith("text/plain")
        assert payload.decode("utf-8").rstrip().endswith("# EOF")

    def test_unknown_route_is_404(self, service):
        status, _, payload = service.dispatch("POST", "/v1/nope", b"{}")
        assert status == 404
        assert json.loads(payload)["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self, service):
        status, _, payload = service.dispatch("GET", "/v1/plan")
        assert status == 405
        assert json.loads(payload)["error"]["code"] == "invalid_request"

    def test_bad_json_is_400(self, service):
        status, _, payload = service.dispatch(
            "POST", "/v1/plan", b"{not json"
        )
        assert status == 400
        assert json.loads(payload)["error"]["code"] == "invalid_request"

    def test_unknown_model_is_404(self, service):
        status, _, payload = service.dispatch(
            "POST",
            "/v1/plan",
            json.dumps({"target": 78.0, "model": "resnet"}).encode(),
        )
        assert status == 404
        assert json.loads(payload)["error"]["code"] == "unknown_model"

    def test_bad_schema_is_400(self, service):
        status, _, payload = service.dispatch(
            "POST",
            "/v1/plan",
            json.dumps(
                {"schema": "repro.api/v9", "target": 78.0}
            ).encode(),
        )
        assert status == 400

    def test_unknown_field_is_400(self, service):
        status, _, payload = service.dispatch(
            "POST",
            "/v1/plan",
            json.dumps({"target": 78.0, "deadlnie_h": 6.0}).encode(),
        )
        assert status == 400
        assert "deadlnie_h" in json.loads(payload)["error"]["message"]

    def test_infeasible_is_422(self, service):
        status, _, payload = service.dispatch(
            "POST", "/v1/plan", _body(target=80.0, metric="top1")
        )
        assert status == 422
        assert json.loads(payload)["error"]["code"] == "infeasible"

    def test_overload_is_503_and_exempts_health(self):
        shedding = PlanningService(max_inflight=0)
        status, _, payload = shedding.dispatch(
            "POST", "/v1/plan", _body(target=78.0)
        )
        assert status == 503
        assert json.loads(payload)["error"]["code"] == "overloaded"
        assert shedding.dispatch("GET", "/v1/healthz")[0] == 200
        assert shedding.dispatch("GET", "/v1/metrics")[0] == 200

    def test_negative_inflight_rejected(self):
        with pytest.raises(ApiError):
            PlanningService(max_inflight=-1)

    def test_query_string_and_trailing_slash_normalised(self, service):
        assert service.dispatch("GET", "/v1/healthz/?probe=1")[0] == 200

    def test_request_counter_ticks(self, service):
        registry = MetricsRegistry()
        with scoped_observability(Tracer(enabled=False), registry):
            service.dispatch(
                "POST", "/v1/plan", _body(target=78.0, deadline_h=6.0)
            )
        counters = registry.snapshot()["counters"]
        assert counters.get("service.requests") == 1


class TestSingleFlight:
    def test_parallel_identical_plans_cost_one_evaluation(self):
        """N parallel identical /v1/plan -> exactly 1 miss, N-1 hits."""
        n = 8
        service = PlanningService()
        # a content-key no other test uses, so the probe starts cold
        body = _body(target=78.0, deadline_h=6.0, images=19_000_001)
        registry = MetricsRegistry()
        clear_api_caches()
        with scoped_observability(Tracer(enabled=False), registry):
            with ThreadPoolExecutor(max_workers=n) as pool:
                statuses = list(
                    pool.map(
                        lambda _: service.dispatch(
                            "POST", "/v1/plan", body
                        )[0],
                        range(n),
                    )
                )
        assert statuses == [200] * n
        counters = registry.snapshot()["counters"]
        assert counters["evalspace.cache_misses"] == 1
        assert counters["evalspace.cache_hits"] == n - 1
        clear_api_caches()


class TestHttpServer:
    def test_end_to_end_with_client(self):
        registry = MetricsRegistry()
        with PlanningServer(port=0, registry=registry) as server:
            assert server.url.startswith("http://127.0.0.1:")
            client = PlanningClient(server.url)

            health = client.healthz()
            assert health["status"] == "ok"

            response = client.plan(
                PlanRequest(target=78.0, deadline_h=6.0, **SMALL)
            )
            assert response.kind == "min_budget"
            assert response.best.top5 >= 78.0

            with pytest.raises(ApiError) as exc:
                client.plan(
                    PlanRequest(target=80.0, metric="top1", **SMALL)
                )
            assert exc.value.code == "infeasible"

            text = client.metrics()
            assert "repro_service_requests_total" in text
            assert text.rstrip().endswith("# EOF")

    def test_close_is_idempotent(self):
        server = PlanningServer(port=0)
        server.start()
        server.close()
        server.close()


class TestObservabilityRoutes:
    def test_healthz_reports_uptime_inflight_served(self):
        service = PlanningService()
        first = json.loads(service.dispatch("GET", "/v1/healthz")[2])
        assert first["uptime_s"] >= 0.0
        assert first["inflight"] == 0
        assert first["served"] == 0  # counted after dispatch completes
        service.dispatch(
            "POST", "/v1/plan", _body(target=78.0, deadline_h=6.0)
        )
        second = json.loads(service.dispatch("GET", "/v1/healthz")[2])
        assert second["served"] == 2  # healthz + plan
        assert second["uptime_s"] >= first["uptime_s"]

    def test_status_route_serves_windows_and_anomalies(self):
        service = PlanningService()
        for _ in range(3):
            service.dispatch(
                "POST", "/v1/plan", _body(target=78.0, deadline_h=6.0)
            )
        status, content_type, payload = service.dispatch(
            "GET", "/v1/status"
        )
        assert status == 200
        assert content_type == "application/json"
        body = json.loads(payload)
        assert body["schema"] == "repro.api/v1"
        assert body["anomalies"] == []
        metrics = body["metrics"]
        assert {
            "latency_s",
            "cost",
            "shed_rate",
            "error_rate",
            "cache_hit_ratio",
        } <= set(metrics)
        assert metrics["latency_s"]["detector"]["metric"] == "latency_s"

    def test_status_is_exempt_from_shedding(self):
        shedding = PlanningService(max_inflight=0)
        assert shedding.dispatch("GET", "/v1/status")[0] == 200

    def test_access_events_replace_the_stdlib_log(self):
        from repro.obs import get_event_bus

        service = PlanningService()
        events = []
        with get_event_bus().subscribed(events.append):
            service.dispatch(
                "POST", "/v1/plan", _body(target=78.0, deadline_h=6.0)
            )
            service.dispatch("GET", "/v1/healthz")
        access = [e for e in events if e["kind"] == "service.access"]
        assert [(e["method"], e["path"], e["status"]) for e in access] == [
            ("POST", "/v1/plan", 200),
            ("GET", "/v1/healthz", 200),
        ]
        for event in access:
            assert event["latency_s"] >= 0.0
            assert len(event["trace_id"]) == 16

    def test_dispatch_joins_the_header_trace(self):
        from repro.obs.context import TRACE_HEADER

        from repro.obs import get_event_bus

        service = PlanningService()
        events = []
        with get_event_bus().subscribed(events.append):
            service.dispatch(
                "GET",
                "/v1/healthz",
                b"",
                headers={TRACE_HEADER: "ab12cd34ef56ab78-7"},
            )
        (event,) = [e for e in events if e["kind"] == "service.access"]
        assert event["trace_id"] == "ab12cd34ef56ab78"

    def test_monitor_records_latency_shed_and_cost(self):
        clock = iter(
            [0.0] + [0.1 * i for i in range(1, 200)]
        ).__next__
        from repro.service import ServiceMonitor

        monitor = ServiceMonitor(window_s=1.0, clock=clock)
        service = PlanningService(max_inflight=0, monitor=monitor)
        for _ in range(12):
            service.dispatch("POST", "/v1/plan", _body(target=78.0))
        monitor.pipeline.flush()
        shed = monitor.pipeline.series["shed_rate"]
        assert shed.closed >= 1
        assert all(w.mean == 1.0 for w in shed.windows)  # all 503s

"""Units for repro.obs: spans, metrics, run manifests, scoping."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    get_metrics,
    get_tracer,
    percentile,
    scoped_observability,
)


class TestTracer:
    def test_span_records_timing_and_tags(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as span:
            pass
        assert span.finished
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0
        assert span.tags == {"items": 3}
        assert tracer.find("work") == (span,)

    def test_nesting_builds_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf") as leaf:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        assert sibling.parent_id == outer.span_id
        assert tracer.children(outer) == (inner, sibling)
        assert tracer.depth(outer) == 0
        assert tracer.depth(leaf) == 2

    def test_spans_kept_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.spans] == ["a", "b", "c"]

    def test_parent_restored_after_exception(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with pytest.raises(RuntimeError):
                with tracer.span("failing") as failing:
                    raise RuntimeError("boom")
            with tracer.span("after") as after:
                pass
        assert failing.finished  # timed even on the error path
        assert after.parent_id == failing.parent_id

    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            assert span is None
        assert tracer.spans == ()

    def test_as_dicts_round_trips_through_json(self):
        tracer = Tracer()
        with tracer.span("outer", k="v"):
            with tracer.span("inner"):
                pass
        restored = json.loads(json.dumps(tracer.as_dicts()))
        assert [d["name"] for d in restored] == ["outer", "inner"]
        assert restored[1]["parent_id"] == restored[0]["span_id"]


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 10, 25, 50, 75, 90, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_single_value(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        c = registry.counter("events")
        c.inc()
        c.inc(9)
        assert registry.counter("events").value == 10  # get-or-create

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("peak").set(3)
        registry.gauge("peak").set(7.5)
        assert registry.gauge("peak").value == 7.5

    def test_timer_summary(self):
        registry = MetricsRegistry()
        t = registry.timer("lat")
        t.observe_many([1.0, 2.0, 3.0, 4.0])
        s = t.summary()
        assert s["count"] == 4
        assert s["total"] == 10.0
        assert s["mean"] == 2.5
        assert s["max"] == 4.0
        assert s["p50"] == 2.5
        assert s["truncated"] == 0

    def test_timer_truncation_keeps_count_and_max(self):
        from repro.obs import Timer

        t = Timer("lat", max_samples=3)
        t.observe_many([1.0, 2.0, 3.0, 100.0])
        s = t.summary()
        assert s["count"] == 4
        assert s["max"] == 100.0
        assert s["truncated"] == 1
        # percentiles come from the retained prefix only
        assert t.percentile(100) == 3.0

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.25)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["timers"]["t"]["count"] == 1


class TestScoping:
    def test_default_tracer_disabled_metrics_live(self):
        assert get_tracer().enabled is False
        assert get_metrics() is not None

    def test_scoped_pair_swapped_and_restored(self):
        before = (get_tracer(), get_metrics())
        tracer, metrics = Tracer(), MetricsRegistry()
        with scoped_observability(tracer, metrics):
            assert get_tracer() is tracer
            assert get_metrics() is metrics
            with get_tracer().span("visible"):
                pass
        assert (get_tracer(), get_metrics()) == before
        assert [s.name for s in tracer.spans] == ["visible"]

    def test_scopes_nest(self):
        outer_t, inner_t = Tracer(), Tracer()
        with scoped_observability(outer_t, MetricsRegistry()):
            with scoped_observability(inner_t, None):
                assert get_tracer() is inner_t
            assert get_tracer() is outer_t


class TestRunManifest:
    def _manifest(self):
        from repro.experiments.engine import ExperimentResult

        results = [
            ExperimentResult(
                artefact="fig4",
                title="t4",
                category="figure",
                text="x",
                wall_s=1.25,
                cpu_s=1.0,
                cache_hit=True,
                config_hash="abc",
            ),
            ExperimentResult(
                artefact="fig5",
                title="t5",
                category="figure",
                text="",
                status="error",
                error="Traceback ...",
                wall_s=0.5,
                cpu_s=0.5,
                config_hash="def",
            ),
        ]
        return RunManifest.collect(
            results, jobs=2, use_cache=True, wall_s=2.0
        )

    def test_collect_and_queries(self):
        manifest = self._manifest()
        assert manifest.errors == ("fig5",)
        assert manifest.cache_hits == 1
        assert manifest.record("fig4").wall_s == 1.25
        with pytest.raises(KeyError):
            manifest.record("fig99")

    def test_json_round_trip(self):
        manifest = self._manifest()
        restored = RunManifest.from_json(manifest.to_json())
        assert restored == manifest

    def test_write_and_read(self, tmp_path):
        manifest = self._manifest()
        path = manifest.write(tmp_path / "nested" / "manifest.json")
        assert path.exists()
        assert RunManifest.read(path) == manifest
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.run-manifest/v1"
        assert payload["environment"]["python"]

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            RunManifest.from_dict({"schema": "something/else"})


class TestTimerEdgeCases:
    """Degenerate sample counts must degrade to nan, never raise."""

    def test_zero_samples_all_stats_nan(self):
        from repro.obs import Timer

        t = Timer("never_observed")
        s = t.summary()
        assert s["count"] == 0
        for key in ("mean", "max", "p50", "p90", "p99"):
            assert math.isnan(s[key]), key
        assert s["total"] == 0.0
        assert math.isnan(t.percentile(50))

    def test_one_sample_every_percentile_is_it(self):
        from repro.obs import Timer

        t = Timer("once")
        t.observe(0.75)
        for q in (0, 1, 50, 99, 100):
            assert t.percentile(q) == 0.75
        s = t.summary()
        assert s["count"] == 1
        assert s["p50"] == s["p99"] == s["mean"] == s["max"] == 0.75

    def test_zero_samples_exposition_has_no_nan(self):
        from repro.obs.export import prometheus_text

        registry = MetricsRegistry()
        registry.timer("empty_s")
        text = prometheus_text(registry.snapshot())
        assert "quantile" not in text
        assert "repro_empty_s_count 0" in text
        assert "repro_empty_s_sum 0" in text
        assert "nan" not in text.lower()

    def test_fully_truncated_timer_exposes_no_quantiles(self):
        # count > 0 but every retained sample truncated away is the
        # nastiest corner: retained == 0 must also suppress quantiles
        from repro.obs import Timer
        from repro.obs.export import prometheus_text

        t = Timer("lat", max_samples=2)
        t.observe_many([1.0, 2.0, 3.0])
        snapshot = {
            "counters": {},
            "gauges": {},
            "timers": {
                "lat": {**t.summary(), "truncated": t.summary()["count"]}
            },
        }
        text = prometheus_text(snapshot)
        assert "quantile" not in text
        assert "repro_lat_count 3" in text


class TestEventBus:
    def test_counter_and_gauge_emit_when_subscribed(self):
        from repro.obs import get_event_bus

        events = []
        registry = MetricsRegistry()
        with get_event_bus().subscribed(events.append):
            registry.counter("work").inc(2)
            registry.gauge("depth").set(5)
        registry.counter("work").inc(100)  # after unsubscribe: silent
        assert [(e["kind"], e["name"]) for e in events] == [
            ("counter", "work"),
            ("gauge", "depth"),
        ]
        assert events[0]["delta"] == 2 and events[0]["value"] == 2

    def test_span_open_close_events(self):
        from repro.obs import get_event_bus

        events = []
        tracer = Tracer()
        with get_event_bus().subscribed(events.append):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        kinds = [(e["kind"], e["name"]) for e in events]
        assert kinds == [
            ("span.open", "outer"),
            ("span.open", "inner"),
            ("span.close", "inner"),
            ("span.close", "outer"),
        ]
        close = events[-1]
        assert close["wall_s"] >= 0.0 and "span_id" in close

    def test_seq_monotonic_and_idle_bus_free(self):
        from repro.obs import get_event_bus

        bus = get_event_bus()
        assert bus.active is False  # nothing subscribed at rest
        events = []
        with bus.subscribed(events.append):
            assert bus.active is True
            bus.emit("a")
            bus.emit("b")
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == 2

    def test_raising_subscriber_does_not_stop_delivery(self):
        from repro.obs.events import EventBus

        bus = EventBus()
        received = []

        def bad(event):
            raise RuntimeError("observer crash")

        bus.subscribe(bad)
        bus.subscribe(received.append)
        bus.emit("survives")
        assert [e["kind"] for e in received] == ["survives"]

    def test_jsonl_log_schema_and_trailer(self, tmp_path):
        from repro.obs import JsonlEventLog, get_event_bus

        path = tmp_path / "events.jsonl"
        with JsonlEventLog(path) as log:
            get_event_bus().emit("one", value=1)
            get_event_bus().emit("two")
        lines = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert lines[0] == {
            "schema": "repro.events/v1",
            "kind": "log.open",
        }
        assert lines[1]["kind"] == "one" and lines[1]["ts_unix"] > 0
        assert lines[-1] == {"kind": "log.close", "events": 2}
        assert log.count == 2

"""Benchmark: extension — static vs autoscaled fleets under surge load.

Times the full three-deployment comparison (one static run + two
autoscaled runs over ~150k requests) and asserts the cost/latency
triangle: elasticity saves most of the static bill, pruning buys back
part of the latency the scale-out lag costs.
"""

from __future__ import annotations

from repro.experiments import ext_autoscale


def test_ext_autoscale(benchmark):
    ext_autoscale.run.cache_clear()
    study = benchmark.pedantic(
        ext_autoscale.run,
        kwargs=dict(
            base_rate=80.0, surge_rate=700.0, phase_s=60.0, peak_fleet=6
        ),
        rounds=1,
        iterations=1,
    )
    static = study.row("static peak fleet")
    auto = study.row("autoscaled, unpruned")
    pruned = study.row("autoscaled, conv1-2 pruned")
    assert auto.cost < static.cost
    assert pruned.cost < auto.cost
    assert static.p99_s < pruned.p99_s

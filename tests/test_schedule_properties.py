"""Property tests for schedules, spec algebra and calibration guards."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import caffenet_accuracy_model
from repro.errors import CalibrationError
from repro.pruning import PruneSpec
from repro.pruning.schedule import (
    DegreeOfPruning,
    multi_layer_grid,
    single_layer_sweep,
    uniform_sweep,
)

ratio = st.floats(0.0, 0.99)
layer_name = st.sampled_from(["conv1", "conv2", "conv3", "fc1"])


class TestSpecAlgebra:
    @given(st.dictionaries(layer_name, ratio, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_label_roundtrips_layers(self, ratios):
        spec = PruneSpec(ratios)
        nonzero = {k for k, v in ratios.items() if v > 0}
        assert set(spec.layers) == nonzero
        if nonzero:
            for name in nonzero:
                assert name in spec.label()
        else:
            assert spec.label() == "nonpruned"

    @given(
        st.dictionaries(layer_name, ratio, max_size=3),
        st.dictionaries(layer_name, ratio, max_size=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_commutative_and_dominating(self, a, b):
        sa, sb = PruneSpec(a), PruneSpec(b)
        merged = sa.merged(sb)
        assert merged == sb.merged(sa)
        for name in merged.layers:
            assert merged.ratio_for(name) >= sa.ratio_for(name)
            assert merged.ratio_for(name) >= sb.ratio_for(name)

    @given(st.dictionaries(layer_name, ratio, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_merge_identity(self, ratios):
        spec = PruneSpec(ratios)
        assert spec.merged(PruneSpec.unpruned()) == spec

    @given(st.dictionaries(layer_name, ratio, min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_merge_idempotent(self, ratios):
        spec = PruneSpec(ratios)
        assert spec.merged(spec) == spec


class TestScheduleProperties:
    @given(st.lists(ratio, min_size=1, max_size=12, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_single_layer_sweep_covers_ratios(self, ratios):
        ratios = sorted(ratios)
        degrees = single_layer_sweep("conv1", ratios)
        assert len(degrees) == len(ratios)
        for degree, r in zip(degrees, ratios):
            assert degree.spec.ratio_for("conv1") == r

    @given(
        st.lists(
            st.sampled_from(["a", "b", "c"]),
            min_size=1,
            max_size=3,
            unique=True,
        ),
        st.lists(ratio, min_size=1, max_size=4, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_grid_size_is_product(self, layers, ratios):
        grid = multi_layer_grid({l: ratios for l in layers})
        assert len(grid) == len(ratios) ** len(layers)

    def test_uniform_sweep_labels_unique(self):
        degrees = uniform_sweep(["conv1", "conv2"])
        labels = [d.label for d in degrees]
        assert len(set(labels)) == len(labels)

    def test_degree_of_factory(self):
        degree = DegreeOfPruning.of(PruneSpec({"conv1": 0.5}))
        assert degree.label == "conv1@50"


class TestAccuracyModelInteractionProperties:
    @given(
        st.floats(0.01, 0.89),
        st.floats(0.01, 0.89),
        st.floats(0.01, 0.89),
    )
    @settings(max_examples=40, deadline=None)
    def test_combined_never_better_than_worst_single(self, r1, r2, r3):
        """Pruning more layers can only hurt: the combination's accuracy
        is bounded by the worst of its single-layer components."""
        am = caffenet_accuracy_model()
        combo = PruneSpec({"conv1": r1, "conv2": r2, "conv3": r3})
        singles = [
            am.accuracy(PruneSpec({"conv1": r1})).top5,
            am.accuracy(PruneSpec({"conv2": r2})).top5,
            am.accuracy(PruneSpec({"conv3": r3})).top5,
        ]
        assert am.accuracy(combo).top5 <= min(singles) + 1e-9

    @given(st.floats(0.0, 0.89))
    @settings(max_examples=30, deadline=None)
    def test_singleton_spec_has_no_interaction_penalty(self, r):
        am = caffenet_accuracy_model()
        single = am.accuracy(PruneSpec({"conv2": r})).top5
        drop = am._drop("conv2", r, "top5")
        assert single == pytest.approx(80.0 - drop, abs=1e-9)


class TestCalibrationGuards:
    def test_curve_requires_two_points(self):
        from repro.calibration.curves import PiecewiseCurve

        with pytest.raises(CalibrationError):
            PiecewiseCurve([(0.0, 1.0)])

    def test_flat_then_linear_validates_knee(self):
        from repro.calibration.curves import PiecewiseCurve

        with pytest.raises(CalibrationError):
            PiecewiseCurve.flat_then_linear(0.9, 0.5, 0.0, 10.0)

    def test_models_are_fresh_instances(self):
        from repro.calibration import caffenet_time_model

        a = caffenet_time_model()
        b = caffenet_time_model()
        assert a is not b
        assert a.t_saturated_k80 == b.t_saturated_k80

"""Element-wise magnitude pruning.

The baseline comparator to filter pruning: zero the smallest-magnitude
fraction of individual weights.  It reaches the same density as filter
pruning but scatters zeros irregularly, which is why sparse libraries
speed it up less (see the sparse-crossover ablation,
``benchmarks/test_ablation_sparse.py``).
"""

from __future__ import annotations

import numpy as np

from repro.cnn.layers import WeightedLayer
from repro.cnn.network import Network
from repro.errors import PruningError
from repro.pruning.base import Pruner

__all__ = ["MagnitudePruner", "magnitude_mask"]


def magnitude_mask(weights: np.ndarray, ratio: float) -> np.ndarray:
    """Boolean mask, True where a weight should be *kept*.

    Zeros the ``ratio`` fraction of entries with smallest ``|w|``;
    deterministic tie-breaking by flat index.
    """
    count = int(round(ratio * weights.size))
    if count == 0:
        return np.ones(weights.shape, dtype=bool)
    order = np.argsort(np.abs(weights), axis=None, kind="stable")
    mask = np.ones(weights.size, dtype=bool)
    mask[order[:count]] = False
    return mask.reshape(weights.shape)


class MagnitudePruner(Pruner):
    """Zero the smallest-magnitude ``ratio`` of each targeted layer."""

    def prune_layer(
        self, network: Network, layer_name: str, ratio: float
    ) -> None:
        layer = network.layer(layer_name)
        if not isinstance(layer, WeightedLayer):
            raise PruningError(
                f"layer {layer_name!r} has no weights to prune"
            )
        layer.weights *= magnitude_mask(layer.weights, ratio)

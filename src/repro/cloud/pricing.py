"""Pay-per-use pricing, pro-rated to the second.

The paper notes (Section 4.1.2) that although EC2 quotes hourly prices,
"the hourly price mentioned in the specification is pro-rated to the
nearest second" — so a job is billed for ``ceil(seconds)`` at the hourly
rate divided by 3600.
"""

from __future__ import annotations

import math

from repro.cloud.catalog import InstanceType
from repro.errors import ConfigurationError

__all__ = [
    "billed_seconds",
    "billed_cost",
    "hourly_rate_cost",
    "DEFAULT_SPOT_DISCOUNT",
    "spot_rate",
    "spot_cost",
]

#: Historical EC2 spot discount for GPU instances in the paper's era
#: (Oregon p2/g3 spot traded around 30% of on-demand — "up to 70% off").
DEFAULT_SPOT_DISCOUNT = 0.70


def billed_seconds(elapsed_s: float) -> int:
    """Seconds billed for an ``elapsed_s``-second run (round up)."""
    if elapsed_s < 0:
        raise ConfigurationError("elapsed time must be non-negative")
    return int(math.ceil(elapsed_s))


def billed_cost(itype: InstanceType, elapsed_s: float) -> float:
    """Dollars billed for running ``itype`` for ``elapsed_s`` seconds."""
    return billed_seconds(elapsed_s) * itype.price_per_hour / 3600.0


def hourly_rate_cost(rate_per_hour: float, elapsed_s: float) -> float:
    """Dollars for an arbitrary hourly rate, per-second pro-rated."""
    if rate_per_hour < 0:
        raise ConfigurationError("rate must be non-negative")
    return billed_seconds(elapsed_s) * rate_per_hour / 3600.0


def spot_rate(
    rate_per_hour: float, discount: float = DEFAULT_SPOT_DISCOUNT
) -> float:
    """Discounted hourly rate for interruptible (spot) capacity.

    Spot capacity trades a discount for preemption risk; pair the
    discounted rate with a :class:`repro.cloud.faults.FaultPlan` to
    price that risk honestly.
    """
    if rate_per_hour < 0:
        raise ConfigurationError("rate must be non-negative")
    if not 0.0 <= discount < 1.0:
        raise ConfigurationError("spot discount must be in [0, 1)")
    return rate_per_hour * (1.0 - discount)


def spot_cost(
    itype: InstanceType,
    elapsed_s: float,
    discount: float = DEFAULT_SPOT_DISCOUNT,
) -> float:
    """Dollars billed for ``elapsed_s`` seconds of ``itype`` at spot."""
    return billed_seconds(elapsed_s) * spot_rate(
        itype.price_per_hour, discount
    ) / 3600.0

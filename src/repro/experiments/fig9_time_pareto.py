"""Figure 9: impact of accuracy on cloud execution time (Pareto study).

Paper results (Observation 4 / Section 4.3.3): with a 10-hour deadline
for one million Caffenet inferences over the p2 configuration space
there are 7 654 feasible configurations; five are Pareto-optimal for
each accuracy metric, spanning Top-1 27-53% / Top-5 45-78% and 3-5 hours;
picking the Pareto-optimal configuration at the highest accuracy halves
execution time versus other configurations with the same accuracy.

(The paper does not publish its exact 60 pruned variants, so the
feasible-set cardinality differs; the structural findings — a large
feasible set, a small multi-point Pareto frontier, and ~50% time saving
at the best accuracy — are the reproduction targets.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configuration_study import (
    STUDY_DEADLINE_S,
    ParetoStudy,
    pareto_study,
)
from repro.experiments.report import format_kv, format_table

__all__ = ["Fig9Result", "run", "render"]


@dataclass(frozen=True)
class Fig9Result:
    top1: ParetoStudy
    top5: ParetoStudy


def run(deadline_s: float = STUDY_DEADLINE_S) -> Fig9Result:
    return Fig9Result(
        top1=pareto_study("time", "top1", deadline_s=deadline_s),
        top5=pareto_study("time", "top5", deadline_s=deadline_s),
    )


def _render_study(study: ParetoStudy) -> str:
    acc_lo, acc_hi = study.accuracy_range
    t_lo, t_hi = study.objective_range
    summary = format_kv(
        [
            ("points evaluated", study.total_points),
            ("feasible within deadline", study.n_feasible),
            ("Pareto-optimal", study.n_pareto),
            (f"{study.metric} range (%)", f"{acc_lo:.1f} - {acc_hi:.1f}"),
            ("time range (h)", f"{t_lo:.2f} - {t_hi:.2f}"),
            (
                "time saving at best accuracy",
                f"{study.saving_at_best_accuracy() * 100:.0f}%",
            ),
        ]
    )
    rows = [
        (
            r.spec.label(),
            r.configuration.label(),
            f"{r.accuracy.get(study.metric):.1f}",
            f"{r.time_hours:.2f}",
        )
        for r in study.front
    ]
    return summary + "\n" + format_table(
        ["Degree of pruning", "Configuration", f"{study.metric} (%)", "Time (h)"],
        rows,
    )


def render(result: Fig9Result | None = None) -> str:
    result = result or run()
    return (
        "== (a) Top-1 ==\n"
        + _render_study(result.top1)
        + "\n\n== (b) Top-5 ==\n"
        + _render_study(result.top5)
    )

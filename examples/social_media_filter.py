#!/usr/bin/env python
"""Social-media image filtering: the paper's motivating workload.

The paper's introduction motivates the cost-accuracy trade with
near-real-time image filtering on a social platform (~350 million photo
uploads/day): a classifier flags images for manual review, and "it would
be good enough to say that a given image is violating the rules with a
75% probability".

This example sizes the cloud fleet for one hour of that feed under a
latency-driven deadline, at three operating points:

* *strict*  — unpruned Caffenet (maximum accuracy, maximum cost);
* *balanced* — sweet-spot pruning (accuracy intact, cheaper);
* *aggressive* — deeper pruning that still clears the 70% Top-5 bar.

For each it uses Algorithm 1 (the TAR/CAR greedy) to pick instances from
a mixed p2/g3 pool and reports the hourly bill.

Run:  python examples/social_media_filter.py
"""

from repro import (
    CloudInstance,
    CloudSimulator,
    DegreeOfPruning,
    PruneSpec,
    caffenet_accuracy_model,
    caffenet_time_model,
    greedy_allocate,
    instance_type,
)
from repro.errors import InfeasibleError

#: one hour's slice of a 350 M-uploads/day feed (paper Section 1)
UPLOADS_PER_HOUR = 350_000_000 // 24
#: the hour's batch must clear within the hour
DEADLINE_S = 3600.0
#: hourly spending cap for the filtering service
BUDGET = 400.0
#: minimum acceptable Top-5 accuracy for the triage model
ACCURACY_BAR = 70.0

OPERATING_POINTS = {
    "strict": PruneSpec.unpruned(),
    "balanced": PruneSpec({"conv1": 0.2, "conv2": 0.4}),
    "aggressive": PruneSpec({"conv1": 0.3, "conv2": 0.5}),
}


def main() -> None:
    simulator = CloudSimulator(
        caffenet_time_model(), caffenet_accuracy_model()
    )
    # a realistic mixed pool: several instances of each large type
    pool = [
        CloudInstance(instance_type(name))
        for name in (
            ["p2.16xlarge"] * 4
            + ["p2.8xlarge"] * 4
            + ["g3.16xlarge"] * 6
            + ["g3.8xlarge"] * 4
        )
    ]

    print(
        f"feed: {UPLOADS_PER_HOUR:,} images/hour | deadline "
        f"{DEADLINE_S:.0f}s | budget ${BUDGET:.0f}/h | bar "
        f"{ACCURACY_BAR:.0f}% Top-5\n"
    )
    rows = []
    for name, spec in OPERATING_POINTS.items():
        accuracy = simulator.accuracy_model.accuracy(spec)
        if accuracy.top5 < ACCURACY_BAR:
            print(f"{name:12} rejected: {accuracy.top5:.0f}% Top-5 below bar")
            continue
        try:
            allocation = greedy_allocate(
                [DegreeOfPruning.of(spec)],
                pool,
                simulator,
                images=UPLOADS_PER_HOUR,
                deadline_s=DEADLINE_S,
                budget=BUDGET,
            )
        except InfeasibleError as exc:
            print(f"{name:12} infeasible: {exc}")
            continue
        r = allocation.result
        rows.append((name, r))
        print(
            f"{name:12} {r.configuration.label():40} "
            f"{r.time_s:6.0f}s  ${r.cost:7.2f}/h  "
            f"Top-5 {r.accuracy.top5:.0f}%  CAR {r.car('top5'):.2f}"
        )

    if len(rows) >= 2:
        strict, cheap = rows[0][1], rows[-1][1]
        print(
            f"\nrunning at the {rows[-1][0]!r} point saves "
            f"${(strict.cost - cheap.cost):,.2f}/hour "
            f"(${(strict.cost - cheap.cost) * 24 * 365:,.0f}/year) while "
            f"staying above the {ACCURACY_BAR:.0f}% review bar"
        )


if __name__ == "__main__":
    main()

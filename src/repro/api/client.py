"""A stdlib HTTP client for the planning service.

:class:`PlanningClient` speaks the same frozen request/response types
as the in-process handlers — ``client.plan(PlanRequest(...))`` returns
the same :class:`~repro.api.types.PlanResponse` (modulo the rich
in-process report objects, which never cross the wire) as
``repro.api.plan(...)``, so code can swap between embedded and remote
planning by changing one constructor.

Built on :mod:`urllib.request` only; server-side :class:`ApiError`
bodies are re-raised as :class:`ApiError` with the original code.

Every request travels inside a request-scoped
:class:`~repro.obs.context.TraceContext`: the client opens a
``client.request`` span, re-roots the context under it, and sends the
context along in the ``X-Repro-Trace`` header — so the server-side
``service.request`` span (and everything under it, down to
``evalspace.evaluate``) shares the client's ``trace_id`` and, when
client and server share a process, forms one connected span tree.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.api.types import (
    ApiError,
    FleetRequest,
    FleetResponse,
    PlanRequest,
    PlanResponse,
)
from repro.obs import get_tracer
from repro.obs.context import (
    TRACE_HEADER,
    TraceContext,
    activate,
    current_trace,
    new_trace_id,
)

__all__ = ["PlanningClient"]


class PlanningClient:
    """Typed access to a running planning service.

    Parameters
    ----------
    base_url:
        Root of the service, e.g. ``http://127.0.0.1:8123`` (trailing
        slash tolerated).
    timeout_s:
        Per-request socket timeout.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, bytes]:
        data = (
            None
            if body is None
            else json.dumps(body).encode("utf-8")
        )
        context = current_trace()
        if context is None:
            context = TraceContext(new_trace_id())
        with activate(context), get_tracer().span(
            "client.request", method=method, path=path
        ) as span:
            if span is not None:
                # re-root the context so the server span parents here
                context = context.child(span.span_id)
            headers = {TRACE_HEADER: context.to_header()}
            if data is not None:
                headers["Content-Type"] = "application/json"
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=data,
                method=method,
                headers=headers,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    status, payload = response.status, response.read()
            except urllib.error.HTTPError as exc:
                status, payload = exc.code, exc.read()
            if span is not None:
                span.tags["status"] = status
            return status, payload

    def _post(self, path: str, body: dict) -> dict:
        status, raw = self._request("POST", path, body)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            raise ApiError(
                "internal",
                f"non-JSON response (HTTP {status}) from {path}",
            ) from None
        if status >= 400 or "error" in payload:
            raise ApiError.from_dict(payload)
        return payload

    # ------------------------------------------------------------------
    def plan(self, request: PlanRequest) -> PlanResponse:
        """``POST /v1/plan``."""
        return PlanResponse.from_dict(
            self._post("/v1/plan", request.to_dict())
        )

    def evaluate_fleets(self, request: FleetRequest) -> FleetResponse:
        """``POST /v1/fleet/evaluate``."""
        return FleetResponse.from_dict(
            self._post("/v1/fleet/evaluate", request.to_dict())
        )

    def cheapest_fleets(self, request: FleetRequest) -> FleetResponse:
        """``POST /v1/fleet/cheapest``."""
        return FleetResponse.from_dict(
            self._post("/v1/fleet/cheapest", request.to_dict())
        )

    def healthz(self) -> dict:
        """``GET /v1/healthz`` (raises on a non-200 answer)."""
        status, raw = self._request("GET", "/v1/healthz")
        if status != 200:
            raise ApiError(
                "internal", f"healthz returned HTTP {status}"
            )
        return json.loads(raw.decode("utf-8"))

    def metrics(self) -> str:
        """``GET /v1/metrics`` — the OpenMetrics exposition text."""
        status, raw = self._request("GET", "/v1/metrics")
        if status != 200:
            raise ApiError(
                "internal", f"metrics returned HTTP {status}"
            )
        return raw.decode("utf-8")

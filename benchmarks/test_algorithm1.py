"""Benchmark: Algorithm 1 — TAR/CAR greedy vs exhaustive allocation.

Paper: configuration search is O(2^|G|); the greedy runs in
O(|G| log |G|) and picks efficient configurations.  The two benchmarks
time each search on the same pool so the report shows the gap directly.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import brute_force_allocate, greedy_allocate
from repro.experiments.algorithm1 import _default_degrees, _resource_pool

POOL = 10
IMAGES = 200_000
DEADLINE_S = 2 * 3600.0
BUDGET = 15.0


@pytest.fixture(scope="module")
def problem(caffenet_simulator):
    return (
        _default_degrees(),
        _resource_pool(POOL),
        caffenet_simulator,
    )


def test_algorithm1_greedy(benchmark, problem):
    degrees, pool, simulator = problem
    result = benchmark(
        greedy_allocate, degrees, pool, simulator, IMAGES, DEADLINE_S, BUDGET
    )
    assert result.result.within(DEADLINE_S, BUDGET)


def test_algorithm1_brute_force(benchmark, problem):
    degrees, pool, simulator = problem
    result = benchmark.pedantic(
        brute_force_allocate,
        args=(degrees, pool, simulator, IMAGES, DEADLINE_S, BUDGET),
        rounds=1,
        iterations=1,
    )
    assert result.evaluations == len(degrees) * (2**POOL - 1)


def test_algorithm1_quality_gap(benchmark, problem):
    """Greedy reaches brute-force accuracy; measure the combined run."""
    degrees, pool, simulator = problem
    small_pool = pool[:6]

    def both():
        g = greedy_allocate(
            degrees, small_pool, simulator, IMAGES, DEADLINE_S, BUDGET
        )
        b = brute_force_allocate(
            degrees, small_pool, simulator, IMAGES, DEADLINE_S, BUDGET
        )
        return g, b

    greedy, brute = benchmark.pedantic(both, rounds=1, iterations=1)
    assert greedy.accuracy_top5 == pytest.approx(brute.accuracy_top5)
    assert brute.result.cost <= greedy.result.cost + 1e-9

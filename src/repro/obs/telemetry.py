"""Per-request serving telemetry: histograms, gauges and SLO monitors.

The serving simulators historically exposed only end-of-run aggregates
(a latency array on the report).  This module is the streaming view a
real serving fleet would export — built so a simulator can feed it from
inside the event loop without per-request object retention:

* :class:`LatencyHistogram` — fixed exponential buckets, O(1) per
  observation, percentile estimates by linear interpolation inside the
  bucket.  No sample list ever grows with traffic.
* :class:`GaugeStat` — streaming last/min/max/mean of a sampled gauge
  (queue depth at dispatch, batch occupancy).
* :class:`SloMonitor` — a sliding window (ring of coarse time buckets)
  over request outcomes, computing **burn rates** for two SLOs: an
  availability target (drops burn error budget) and a latency quantile
  target (requests slower than the threshold burn budget).  Burn rate
  is window error rate divided by error budget — 1.0 means errors are
  arriving exactly as fast as the SLO tolerates.  Alerts are
  edge-triggered: one ``slo.alert`` event on the bus when a burn rate
  crosses the policy's threshold, one ``slo.resolve`` when it clears.
* :class:`ServingTelemetry` — the bundle a simulator run carries; its
  :meth:`~ServingTelemetry.finalize` publishes the headline gauges
  (p50/p95/p99, peak queue depth, availability, goodput) into the
  current :class:`~repro.obs.metrics.MetricsRegistry` so every exporter
  sees them.

:func:`record_report_gauges` is the one source of truth mapping a
serving/autoscale report's goodput accounting onto registry gauges —
used by both simulators and by
:func:`repro.serving.metrics.availability_summary`.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.events import get_event_bus
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "GaugeStat",
    "LatencyHistogram",
    "ServingTelemetry",
    "SloMonitor",
    "SloPolicy",
    "record_report_gauges",
]

#: 1 ms .. ~197 s in quarter-powers of two — wide enough for every
#: calibrated model at every load this repo simulates.  The 19% bucket
#: growth bounds the in-bucket interpolation error of any percentile to
#: the same 19%, at 72 buckets (576 bytes of counters).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    0.001 * 2.0 ** (i / 4.0) for i in range(72)
)


class LatencyHistogram:
    """Streaming bucketed distribution; no per-request retention.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything beyond the last bound.  Memory
    is ``len(bounds) + 1`` integers regardless of traffic.
    """

    __slots__ = ("bounds", "counts", "count", "total", "_max", "_min")

    def __init__(
        self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                "histogram bounds must be strictly increasing"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._max = float("-inf")
        self._min = float("inf")

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    def observe_array(self, values: np.ndarray) -> None:
        """Observe a whole latency array in one columnar pass.

        Bucket counts come from ``np.searchsorted`` + ``np.bincount``
        (the same comparisons ``bisect_right`` makes, so the counts are
        identical); the running ``total`` is accumulated in array order
        so the float sum is bit-identical to calling :meth:`observe`
        once per element.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        indices = np.searchsorted(self.bounds, values, side="right")
        per_bucket = np.bincount(indices, minlength=len(self.counts))
        for i, n in enumerate(per_bucket.tolist()):
            self.counts[i] += n
        self.count += int(values.size)
        # np.cumsum is a sequential left-to-right scan (unlike np.sum's
        # pairwise reduction), so seeding it with the running total
        # reproduces the scalar accumulation bit for bit
        self.total = float(
            np.cumsum(np.concatenate(([self.total], values)))[-1]
        )
        high = float(values.max())
        low = float(values.min())
        if high > self._max:
            self._max = high
        if low < self._min:
            self._min = low

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    @property
    def min(self) -> float:
        return self._min if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimated percentile (linear interpolation in-bucket).

        Exact to within one bucket's width; the overflow bucket reports
        the observed maximum.  ``nan`` with no observations.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        target = self.count * q / 100.0
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else self._max
                )
                lo = max(lo, self._min) if i == 0 else lo
                frac = (target - cumulative) / n
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cumulative += n
        return self._max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-ready bucket dump (bounds + counts + overflow)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


class GaugeStat:
    """Streaming last/min/max/mean over sampled gauge values."""

    __slots__ = ("name", "count", "total", "last", "_max", "_min")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.last: float | None = None
        self._max = float("-inf")
        self._min = float("inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.last = value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value

    def observe_stream(self, values) -> None:
        """Observe a whole sequence in order, bit-identical to repeated
        :meth:`observe` calls.

        The running ``total`` is seeded into ``np.cumsum`` — a
        sequential left-to-right scan (unlike ``np.sum``'s pairwise
        reduction), so the accumulation is bit-identical to
        element-by-element float addition (the same argument
        :meth:`LatencyHistogram.observe_array` rests on) — while
        min/max reduce in one pass, order-independent for the finite
        values gauges carry.
        """
        if not isinstance(values, (list, tuple, np.ndarray)):
            values = list(values)
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.total = float(
            np.cumsum(np.concatenate(([self.total], arr)))[-1]
        )
        self.last = float(arr[-1])
        hi = float(arr.max())
        lo = float(arr.min())
        if hi > self._max:
            self._max = hi
        if lo < self._min:
            self._min = lo

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    @property
    def min(self) -> float:
        return self._min if self.count else float("nan")

    def summary(self) -> dict[str, float | int | None]:
        return {
            "count": self.count,
            "last": self.last,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


# ----------------------------------------------------------------------
# SLO monitoring
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloPolicy:
    """What the fleet promised, and when to page about it.

    Attributes
    ----------
    latency_slo_s:
        The latency threshold of the quantile SLO (e.g. "p99 <= 2 s").
    latency_quantile:
        The promised quantile, in (0, 1).  ``0.99`` means up to 1% of
        requests may legitimately exceed ``latency_slo_s``.
    availability_target:
        Fraction of offered requests that must be served, in (0, 1).
    window_s, bucket_s:
        Sliding-window length and its bucket granularity.
    burn_alert:
        Alert when a burn rate reaches this multiple of budget-neutral
        consumption (1.0 = "errors exactly as fast as the SLO allows";
        SRE practice pages at several multiples of that).
    min_requests:
        Suppress evaluation until the window holds this many requests,
        so one slow request in an idle second does not page.
    """

    latency_slo_s: float
    latency_quantile: float = 0.99
    availability_target: float = 0.999
    window_s: float = 10.0
    bucket_s: float = 1.0
    burn_alert: float = 2.0
    min_requests: int = 20

    def __post_init__(self) -> None:
        if self.latency_slo_s <= 0:
            raise ConfigurationError("latency SLO must be positive")
        if not 0 < self.latency_quantile < 1:
            raise ConfigurationError("latency quantile must be in (0,1)")
        if not 0 < self.availability_target < 1:
            raise ConfigurationError(
                "availability target must be in (0,1)"
            )
        if self.bucket_s <= 0 or self.window_s < self.bucket_s:
            raise ConfigurationError(
                "need window_s >= bucket_s > 0"
            )
        if self.burn_alert <= 0:
            raise ConfigurationError("burn_alert must be positive")
        if self.min_requests < 1:
            raise ConfigurationError("min_requests must be >= 1")


class SloMonitor:
    """Sliding-window burn-rate monitor over request outcomes.

    Feed it completions (:meth:`record_served`) and losses
    (:meth:`record_dropped`) in event-time order; it keeps a ring of
    ``window_s / bucket_s`` coarse buckets, evaluates both burn rates
    after every bucket update, and raises/clears edge-triggered alerts.
    Memory and per-event work are O(1).
    """

    def __init__(self, policy: SloPolicy) -> None:
        self.policy = policy
        # ring buckets: deque of [bucket_index, requests, drops, slow]
        self._buckets: deque[list] = deque()
        self._requests = 0  # rolling window sums
        self._drops = 0
        self._slow = 0
        self._alerting: dict[str, bool] = {
            "availability": False,
            "latency": False,
        }
        self.alerts: list[dict] = []

    # ------------------------------------------------------------------
    def record_served(self, now: float, latency_s: float) -> None:
        self._record(now, slow=latency_s > self.policy.latency_slo_s)

    def record_dropped(self, now: float, n: int = 1) -> None:
        for _ in range(n):
            self._record(now, dropped=True)

    # ------------------------------------------------------------------
    def record_stream(
        self,
        times: np.ndarray,
        dropped: np.ndarray,
        slow: np.ndarray,
    ) -> None:
        """Replay a whole outcome stream in one columnar pass.

        ``times`` must be nondecreasing (the event-time-order contract
        of :meth:`record_served`/:meth:`record_dropped`); ``dropped``
        and ``slow`` are aligned boolean arrays.  The replay is exact:
        window sums, burn rates, edge-triggered alerts and the final
        ring state are bit-identical to feeding the stream one record
        at a time — the per-event Python loop is replaced by cumulative
        sums and ``np.searchsorted`` window lookups, and only the (rare)
        alert edges fall back to scalar bookkeeping.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        dropped = np.asarray(dropped, dtype=bool)
        slow = np.asarray(slow, dtype=bool)
        policy = self.policy
        wb = int(policy.window_s / policy.bucket_s)
        bucket = np.floor_divide(times, policy.bucket_s).astype(np.int64)
        horizon = bucket - wb
        # prior ring state (buckets recorded before this stream); the
        # common single-shot ingest starts from an empty ring, where
        # every prior window sum is a scalar zero
        prior = [list(b) for b in self._buckets]
        if prior:
            prior_idx = np.array([b[0] for b in prior], dtype=np.int64)
            prior_req = np.array([b[1] for b in prior], dtype=np.int64)
            prior_drop = np.array([b[2] for b in prior], dtype=np.int64)
            prior_slow = np.array([b[3] for b in prior], dtype=np.int64)
            # prior buckets surviving event i's expiry: index > horizon_i
            keep = np.searchsorted(prior_idx, horizon, side="right")
            prior_req_w = prior_req.sum() - np.concatenate(
                ([0], np.cumsum(prior_req))
            )[keep]
            prior_drop_w = prior_drop.sum() - np.concatenate(
                ([0], np.cumsum(prior_drop))
            )[keep]
            prior_slow_w = prior_slow.sum() - np.concatenate(
                ([0], np.cumsum(prior_slow))
            )[keep]
        else:
            prior_req_w = prior_drop_w = prior_slow_w = 0
        # stream events in event i's window: first j with bucket_j > horizon_i
        start = np.searchsorted(bucket, horizon, side="right")
        cum_drop = np.cumsum(dropped.astype(np.int64))
        cum_slow = np.cumsum(slow.astype(np.int64))
        i = np.arange(times.size)
        req_w = prior_req_w + (i - start + 1)
        drop_w = prior_drop_w + cum_drop - np.where(
            start > 0, cum_drop[start - 1], 0
        )
        slow_w = prior_slow_w + cum_slow - np.where(
            start > 0, cum_slow[start - 1], 0
        )
        burns = {
            "availability": (drop_w / req_w)
            / (1.0 - policy.availability_target),
            "latency": (slow_w / req_w) / (1.0 - policy.latency_quantile),
        }
        evaluated = np.flatnonzero(req_w >= policy.min_requests)
        # edge-triggered alerts: only the state *transitions* on the
        # evaluated subsequence matter, and diff finds them in one pass
        edges: list[tuple[int, int, str, bool]] = []
        for rank, slo in enumerate(("availability", "latency")):
            state = self._alerting[slo]
            firing = burns[slo][evaluated] >= policy.burn_alert
            flips = np.flatnonzero(
                np.diff(
                    np.concatenate(([state], firing)).astype(np.int8)
                )
            )
            for k in flips.tolist():
                state = bool(firing[k])
                edges.append((int(evaluated[k]), rank, slo, state))
            self._alerting[slo] = state
        edges.sort(key=lambda e: (e[0], e[1]))
        for j, _, slo, firing in edges:
            alert = {
                "kind": "slo.alert" if firing else "slo.resolve",
                "slo": slo,
                "at_s": float(times[j]),
                "burn_rate": float(burns[slo][j]),
                "window_requests": int(req_w[j]),
                "window_drops": int(drop_w[j]),
                "window_slow": int(slow_w[j]),
            }
            self.alerts.append(alert)
            get_event_bus().emit(alert["kind"], **alert)
        # final rolling sums + ring: the last event's window
        self._requests = int(req_w[-1])
        self._drops = int(drop_w[-1])
        self._slow = int(slow_w[-1])
        ring: dict[int, list[int]] = {
            int(b[0]): [int(b[1]), int(b[2]), int(b[3])]
            for b in prior
            if b[0] > horizon[-1]
        }
        tail = slice(int(start[-1]), times.size)
        uniq, inverse = np.unique(bucket[tail], return_inverse=True)
        req_by = np.bincount(inverse)
        drop_by = np.bincount(inverse, weights=dropped[tail]).astype(
            np.int64
        )
        slow_by = np.bincount(inverse, weights=slow[tail]).astype(
            np.int64
        )
        for idx, req, drp, slw in zip(uniq, req_by, drop_by, slow_by):
            entry = ring.setdefault(int(idx), [0, 0, 0])
            entry[0] += int(req)
            entry[1] += int(drp)
            entry[2] += int(slw)
        self._buckets = deque([i, *ring[i]] for i in sorted(ring))

    def _record(
        self, now: float, *, dropped: bool = False, slow: bool = False
    ) -> None:
        index = int(now // self.policy.bucket_s)
        if not self._buckets or self._buckets[-1][0] != index:
            self._buckets.append([index, 0, 0, 0])
        bucket = self._buckets[-1]
        bucket[1] += 1
        bucket[2] += dropped
        bucket[3] += slow
        self._requests += 1
        self._drops += dropped
        self._slow += slow
        # expire buckets that fell out of the window
        horizon = index - int(
            self.policy.window_s / self.policy.bucket_s
        )
        while self._buckets and self._buckets[0][0] <= horizon:
            _, requests, drops, slow_n = self._buckets.popleft()
            self._requests -= requests
            self._drops -= drops
            self._slow -= slow_n
        self._evaluate(now)

    # ------------------------------------------------------------------
    def burn_rates(self) -> dict[str, float]:
        """Current window burn rate per SLO (0.0 with no traffic)."""
        if self._requests == 0:
            return {"availability": 0.0, "latency": 0.0}
        availability_budget = 1.0 - self.policy.availability_target
        latency_budget = 1.0 - self.policy.latency_quantile
        return {
            "availability": (
                self._drops / self._requests / availability_budget
            ),
            "latency": self._slow / self._requests / latency_budget,
        }

    @property
    def burning(self) -> bool:
        """Is any SLO currently in the alert state?"""
        return any(self._alerting.values())

    def _evaluate(self, now: float) -> None:
        if self._requests < self.policy.min_requests:
            return
        for slo, burn in self.burn_rates().items():
            firing = burn >= self.policy.burn_alert
            if firing == self._alerting[slo]:
                continue
            self._alerting[slo] = firing
            alert = {
                "kind": "slo.alert" if firing else "slo.resolve",
                "slo": slo,
                "at_s": now,
                "burn_rate": burn,
                "window_requests": self._requests,
                "window_drops": self._drops,
                "window_slow": self._slow,
            }
            self.alerts.append(alert)
            get_event_bus().emit(alert["kind"], **alert)

    def summary(self) -> dict[str, object]:
        fired = [a for a in self.alerts if a["kind"] == "slo.alert"]
        return {
            "alerts_fired": len(fired),
            "alerts": list(self.alerts),
            "burn_rates": self.burn_rates(),
            "burning": self.burning,
        }


# ----------------------------------------------------------------------
# the bundle a simulator run carries
# ----------------------------------------------------------------------
class ServingTelemetry:
    """Per-request telemetry for one serving simulation.

    Pass an instance to ``ServingSimulator.run(..., telemetry=...)`` or
    ``AutoscalingSimulator.run(..., telemetry=...)``; the event loop
    feeds it and ``finalize()`` publishes the headline gauges.  With no
    telemetry attached (the default) the simulators skip every hook.
    """

    def __init__(
        self,
        slo: SloPolicy | None = None,
        latency_bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.latency = LatencyHistogram(latency_bounds)
        self.queue_depth = GaugeStat("queue_depth")
        self.batch_occupancy = GaugeStat("batch_occupancy")
        self.slo = SloMonitor(slo) if slo is not None else None

    # ------------------------------------------------------------------
    # hooks the simulators call (cheap, O(1), no retention)
    def record_served(self, now: float, latency_s: float) -> None:
        self.latency.observe(latency_s)
        if self.slo is not None:
            self.slo.record_served(now, latency_s)

    def record_dropped(self, now: float, n: int = 1) -> None:
        if self.slo is not None:
            self.slo.record_dropped(now, n)

    def record_batch(
        self, now: float, size: int, capacity: int, queued: int
    ) -> None:
        self.batch_occupancy.observe(
            size / capacity if capacity else 0.0
        )
        self.queue_depth.observe(queued)

    def record_batch_stream(self, sizes, capacities, queued) -> None:
        """Record a whole run's dispatch stream in one pass.

        ``sizes``/``capacities``/``queued`` are per-batch sequences in
        dispatch order.  Bit-identical to calling :meth:`record_batch`
        once per batch: the occupancy ratio is computed with the same
        expression and both gauges accumulate in the same order.  The
        batch gauges share no state with the latency/SLO side, so the
        columnar engine may defer this until after the event loop.
        """
        sizes_arr = np.asarray(sizes, dtype=float)
        caps_arr = np.asarray(capacities, dtype=float)
        # elementwise IEEE divide == the scalar `size / cap`; a zero
        # capacity maps to 0.0 exactly like the scalar conditional
        nonzero = caps_arr != 0.0
        ratios = np.where(
            nonzero,
            sizes_arr / np.where(nonzero, caps_arr, 1.0),
            0.0,
        )
        self.batch_occupancy.observe_stream(ratios)
        self.queue_depth.observe_stream(queued)

    def ingest_stream(
        self,
        times: np.ndarray,
        latencies: np.ndarray,
        dropped: np.ndarray,
    ) -> None:
        """Ingest a whole run's outcome stream in one columnar pass.

        ``times`` holds the event-ordered completion/drop timestamps the
        per-event hooks would have seen, ``latencies`` the per-request
        latency (ignored where ``dropped``), ``dropped`` the loss mask.
        Equivalent to calling :meth:`record_served` /
        :meth:`record_dropped` once per element, bit for bit — histogram
        totals, SLO window state and the alert sequence all match the
        scalar path.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        latencies = np.asarray(latencies, dtype=float)
        dropped = np.asarray(dropped, dtype=bool)
        served = ~dropped
        self.latency.observe_array(latencies[served])
        if self.slo is not None:
            slow = np.zeros(times.size, dtype=bool)
            slow[served] = (
                latencies[served] > self.slo.policy.latency_slo_s
            )
            self.slo.record_stream(times, dropped, slow)

    # ------------------------------------------------------------------
    @property
    def alerts(self) -> tuple[dict, ...]:
        return tuple(self.slo.alerts) if self.slo is not None else ()

    @property
    def alerts_fired(self) -> int:
        return sum(
            1 for a in self.alerts if a["kind"] == "slo.alert"
        )

    def finalize(
        self,
        registry: MetricsRegistry | None = None,
        prefix: str = "serving",
    ) -> None:
        """Publish headline gauges into ``registry`` (default: the
        current observability scope's registry)."""
        if registry is None:
            from repro.obs import get_metrics

            registry = get_metrics()
        if self.latency.count:
            for q, name in ((50, "p50"), (95, "p95"), (99, "p99")):
                registry.gauge(f"{prefix}.latency_{name}_s").set(
                    self.latency.percentile(q)
                )
        if self.queue_depth.count:
            registry.gauge(f"{prefix}.queue_depth_peak").set(
                self.queue_depth.max
            )
            registry.gauge(f"{prefix}.batch_occupancy_mean").set(
                self.batch_occupancy.mean
            )
        if self.slo is not None:
            registry.counter(f"{prefix}.slo_alerts").inc(
                self.alerts_fired
            )

    def summary(self) -> dict[str, object]:
        out: dict[str, object] = {
            "latency": self.latency.summary(),
            "queue_depth": self.queue_depth.summary(),
            "batch_occupancy": self.batch_occupancy.summary(),
        }
        if self.slo is not None:
            out["slo"] = self.slo.summary()
        return out


# ----------------------------------------------------------------------
# goodput accounting gauges (one source of truth)
# ----------------------------------------------------------------------
def record_report_gauges(
    report,
    *,
    prefix: str,
    registry: MetricsRegistry | None = None,
) -> None:
    """Register a run's goodput accounting as registry gauges.

    Works on any report exposing ``availability`` / ``goodput`` /
    ``drop_rate`` (both :class:`~repro.serving.simulator.ServingReport`
    and :class:`~repro.serving.autoscaler.AutoscaleReport`); gauges the
    report doesn't define (e.g. ``utilisation`` on autoscale runs) are
    skipped.  Every exporter then sees the same aggregates the render
    paths print — no ad-hoc recomputation.
    """
    if registry is None:
        from repro.obs import get_metrics

        registry = get_metrics()
    for attr in (
        "availability",
        "goodput",
        "drop_rate",
        "utilisation",
        "cost",
    ):
        value = getattr(report, attr, None)
        if value is None:
            continue
        value = float(value)
        if math.isfinite(value):
            registry.gauge(f"{prefix}.{attr}").set(value)

"""Reactive autoscaling for the serving simulator.

The paper's related work (Section 2.2) is dominated by cloud
auto-scaling under deadlines and budgets (PRESS [8], Mao et al.
[21, 22], Sharma et al. [28]); its own evaluation allocates statically.
This module adds the missing piece: a reactive autoscaler over the
serving simulator, so the cost-accuracy trade can be studied under the
elasticity the cloud actually offers.

Mechanics: the fleet starts at ``min_instances`` of one instance type.
Every ``interval_s`` the controller inspects utilisation over the last
window and scales out (paying a boot delay before new GPUs serve) when
hot, or scales in (releasing the most recently launched instance once
its GPUs drain) when cold.  Billing is per instance, per second, from
launch to release — unlike the batch model's Eq. 1, an elastic fleet
doesn't bill released capacity.

Under a :class:`repro.cloud.faults.FaultPlan` the fleet also loses
instances to preemption: billing stops at the preemption instant (the
provider reclaimed the capacity), in-flight batches are requeued
against the per-request retry budget, and replacement capacity — kept
at or above ``min_instances`` — pays the boot delay before serving.
Preempted elastic instances never "recover"; fresh launches replace
them, which is how spot fleets actually behave.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.accuracy_model import AccuracyModel
from repro.cloud.catalog import InstanceType
from repro.cloud.faults import FaultPlan
from repro.cloud.pricing import hourly_rate_cost
from repro.errors import ConfigurationError
from repro.obs import get_metrics, get_tracer
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec
from repro.serving.batcher import BatchPolicy, PendingQueue
from repro.serving.events import EventQueue

__all__ = ["AutoscalePolicy", "AutoscaleReport", "AutoscalingSimulator"]

# request lifecycle states (shared convention with ServingSimulator)
_PENDING, _SERVED, _DROPPED = 0, 1, 2


@dataclass(frozen=True)
class AutoscalePolicy:
    """Reactive scaling rule.

    Attributes
    ----------
    interval_s:
        Control period: utilisation is evaluated this often.
    scale_out_above, scale_in_below:
        Utilisation thresholds (busy fraction over the last window).
    min_instances, max_instances:
        Fleet bounds.
    boot_delay_s:
        Seconds between launching an instance and its GPUs serving
        (billing starts at launch, as on EC2).
    scale_out_on_slo_burn:
        When True and the attached telemetry's SLO monitor is in the
        alert state at a control tick, scale out even below the
        utilisation threshold (burn-rate-driven scaling, Scavenger
        style).  Off by default — it only acts when a run passes a
        telemetry bundle with an SLO policy.
    """

    interval_s: float = 10.0
    scale_out_above: float = 0.75
    scale_in_below: float = 0.30
    min_instances: int = 1
    max_instances: int = 16
    boot_delay_s: float = 15.0
    scale_out_on_slo_burn: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.scale_in_below < self.scale_out_above <= 1.0:
            raise ConfigurationError(
                "need 0 < scale_in_below < scale_out_above <= 1"
            )
        if not 1 <= self.min_instances <= self.max_instances:
            raise ConfigurationError("bad instance bounds")
        if self.interval_s <= 0 or self.boot_delay_s < 0:
            raise ConfigurationError("bad timing parameters")


@dataclass(frozen=True)
class AutoscaleReport:
    """Outcome of an autoscaled serving run.

    ``latencies_s`` holds served requests only; under faults some
    requests may be dropped (retry budget exhausted, timed out, or no
    capacity left when the run ended).
    """

    requests: int
    duration_s: float
    latencies_s: np.ndarray
    cost: float
    fleet_timeline: tuple[tuple[float, int], ...]
    peak_instances: int
    mean_instances: float
    retries: int = 0
    dropped: int = 0
    preempted: int = 0

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in seconds (q in [0, 100])."""
        if self.latencies_s.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, q))

    @property
    def p99(self) -> float:
        """99th-percentile served latency in seconds."""
        return self.latency_percentile(99)

    @property
    def served(self) -> int:
        """Requests that completed (offered minus dropped)."""
        return self.requests - self.dropped

    @property
    def availability(self) -> float:
        """Served fraction of the offered requests."""
        return self.served / self.requests

    @property
    def drop_rate(self) -> float:
        """Dropped fraction of the offered requests."""
        return self.dropped / self.requests

    @property
    def goodput(self) -> float:
        """Served requests per second of simulated wall time."""
        if self.duration_s == 0:
            return 0.0
        return self.served / self.duration_s

    def miss_rate(self, slo_s: float) -> float:
        """Fraction of served requests over the latency SLO."""
        if self.latencies_s.size == 0:
            return 0.0
        return float((self.latencies_s > slo_s).mean())


class _Instance:
    """One elastic instance: billing window + its GPU worker ids."""

    def __init__(
        self, launched_at: float, worker_ids: list[int]
    ) -> None:
        self.launched_at = launched_at
        self.released_at: float | None = None
        self.worker_ids = worker_ids
        self.draining = False


class AutoscalingSimulator:
    """Serve arrivals with a reactive, elastically billed fleet.

    ``hourly_rate`` overrides the per-instance hourly price (e.g. a
    spot rate from :func:`repro.cloud.pricing.spot_rate`); ``None``
    bills the instance type's on-demand rate.
    """

    def __init__(
        self,
        time_model: CalibratedTimeModel,
        accuracy_model: AccuracyModel,
        itype: InstanceType,
        spec: PruneSpec,
        batch_policy: BatchPolicy,
        autoscale: AutoscalePolicy,
        hourly_rate: float | None = None,
    ) -> None:
        if time_model.name != accuracy_model.name:
            raise ConfigurationError("time/accuracy model mismatch")
        if hourly_rate is not None and hourly_rate < 0:
            raise ConfigurationError("hourly rate must be non-negative")
        self.time_model = time_model
        self.accuracy_model = accuracy_model
        self.itype = itype
        self.spec = spec
        self.batch_policy = batch_policy
        self.autoscale = autoscale
        self.hourly_rate = hourly_rate
        self._batching = time_model.batching_model(spec, itype.gpu)
        self._cap = min(
            batch_policy.max_batch, time_model.max_batch(itype.gpu)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: np.ndarray,
        faults: FaultPlan | None = None,
        telemetry=None,
    ) -> AutoscaleReport:
        """Serve ``arrivals`` elastically; see
        :meth:`repro.serving.simulator.ServingSimulator.run` for the
        ``telemetry`` contract.  Unlike the static simulator, an
        attached SLO monitor can also *drive* scaling when the policy
        sets ``scale_out_on_slo_burn``."""
        from repro.obs.telemetry import record_report_gauges

        plan = faults if faults is not None else FaultPlan.none()
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.size == 0:
            raise ConfigurationError("no arrivals to serve")
        if np.any(np.diff(arrivals) < 0):
            raise ConfigurationError("arrivals must be sorted")
        with get_tracer().span(
            "fleet.run", requests=int(arrivals.size)
        ) as span:
            report = self._run(arrivals, plan, telemetry)
        metrics = get_metrics()
        metrics.counter("fleet.runs").inc()
        metrics.counter("fleet.preemptions").inc(report.preempted)
        metrics.gauge("fleet.peak_instances").set(report.peak_instances)
        record_report_gauges(report, prefix="fleet", registry=metrics)
        if telemetry is not None:
            telemetry.finalize(metrics, prefix="fleet")
        if span is not None:
            span.tags["peak_instances"] = report.peak_instances
            span.tags["dropped"] = report.dropped
        return report

    def _run(
        self, arrivals: np.ndarray, plan: FaultPlan, telemetry=None
    ) -> AutoscaleReport:

        events = EventQueue()
        events.extend_sorted(arrivals, "arrival")
        events.push(self.autoscale.interval_s, "control", None)
        for preemption in plan.preemptions:
            events.push(preemption.at_s, "preempt", preemption)

        pending = PendingQueue()
        latencies = np.full(arrivals.size, np.nan)
        status = np.zeros(arrivals.size, dtype=np.uint8)
        retry_count = np.zeros(arrivals.size, dtype=np.int64)
        instances: list[_Instance] = []
        free: list[int] = []
        busy_window = 0.0  # worker-busy seconds in current control window
        worker_busy_until: dict[int, float] = {}
        next_worker_id = 0
        timeline: list[tuple[float, int]] = []
        served = 0
        dropped = 0
        retries_total = 0
        preempted_total = 0
        worker_epoch: dict[int, int] = {}
        inflight: dict[int, tuple[list, float]] = {}
        now = 0.0

        def live_instances() -> list[_Instance]:
            return [i for i in instances if i.released_at is None]

        def live_worker_count() -> int:
            return sum(
                len(i.worker_ids)
                for i in live_instances()
                if not i.draining
            )

        def launch(at: float) -> None:
            nonlocal next_worker_id
            ids = list(
                range(next_worker_id, next_worker_id + self.itype.gpus)
            )
            next_worker_id += self.itype.gpus
            for wid in ids:
                worker_epoch[wid] = 0
            instances.append(_Instance(at, ids))
            timeline.append((at, len(live_instances())))
            # GPUs come online after the boot delay
            events.push(
                at + self.autoscale.boot_delay_s, "online", ids
            )

        def try_release(at: float) -> None:
            """Release the newest non-draining instance beyond the
            minimum; it drains (stops taking work) immediately and is
            billed until its last GPU finishes."""
            candidates = [
                i
                for i in live_instances()
                if not i.draining
            ]
            if len(candidates) <= self.autoscale.min_instances:
                return
            victim = candidates[-1]
            victim.draining = True
            for wid in victim.worker_ids:
                if wid in free:
                    free.remove(wid)
            events.push(at, "maybe-drained", victim)

        def drop_request(request_id: int, at: float) -> None:
            nonlocal dropped
            if status[request_id] != _DROPPED:
                status[request_id] = _DROPPED
                dropped += 1
                if telemetry is not None:
                    telemetry.record_dropped(at)

        def purge(at: float) -> None:
            if plan.timeout_s is None:
                return
            while (
                pending
                and at - pending.oldest_arrival() > plan.timeout_s + 1e-9
            ):
                request_id, _ = pending.take(1)[0]
                drop_request(request_id, at)

        def requeue(batch: list, at: float) -> None:
            nonlocal retries_total
            for request_id, arrival_s in batch:
                retry_count[request_id] += 1
                if retry_count[request_id] > plan.retry_budget:
                    drop_request(request_id, at)
                else:
                    retries_total += 1
                    pending.requeue(request_id, arrival_s)

        def dispatch(at: float) -> None:
            nonlocal busy_window
            purge(at)
            while free and pending.should_dispatch(at, self.batch_policy):
                wid = free.pop()
                batch = pending.take(self._cap)
                service = self._batching.batch_time(
                    len(batch)
                ) * plan.slowdown_factor(wid, at)
                busy_window += service
                if telemetry is not None:
                    telemetry.record_batch(
                        at, len(batch), self._cap, len(pending)
                    )
                worker_busy_until[wid] = at + service
                inflight[wid] = (batch, at + service)
                events.push(
                    at + service,
                    "done",
                    (wid, batch, worker_epoch[wid]),
                )
            if pending and free:
                due = (
                    pending.oldest_arrival()
                    + self.batch_policy.max_wait_s
                )
                events.push(max(due, at), "timer", None)

        # initial fleet boots instantly (it exists before t=0)
        for _ in range(self.autoscale.min_instances):
            launch(0.0)
        for instance in instances:
            free.extend(instance.worker_ids)
        boot_skip = {
            wid for i in instances for wid in i.worker_ids
        }
        # collapse the per-launch construction records into one entry
        del timeline[:-1]

        while events:
            event = events.pop()
            now = event.time
            if event.kind == "arrival":
                pending.push(event.payload, now)
            elif event.kind == "done":
                wid, batch, batch_epoch = event.payload
                if batch_epoch != worker_epoch[wid]:
                    continue  # batch was cancelled by a preemption
                inflight.pop(wid, None)
                for request_id, arrival_s in batch:
                    latencies[request_id] = now - arrival_s
                    status[request_id] = _SERVED
                    if telemetry is not None:
                        telemetry.record_served(now, now - arrival_s)
                served += len(batch)
                owner = next(
                    i
                    for i in instances
                    if wid in i.worker_ids
                )
                if not owner.draining and owner.released_at is None:
                    free.append(wid)
                else:
                    events.push(now, "maybe-drained", owner)
            elif event.kind == "online":
                ids = [
                    wid
                    for wid in event.payload
                    if wid not in boot_skip
                ]
                if ids:
                    owner = next(
                        i for i in instances if ids[0] in i.worker_ids
                    )
                    # a preempted instance can't come online after death
                    if owner.released_at is None:
                        free.extend(ids)
            elif event.kind == "maybe-drained":
                instance = event.payload
                if instance.released_at is None and all(
                    worker_busy_until.get(wid, 0.0) <= now + 1e-9
                    for wid in instance.worker_ids
                ):
                    instance.released_at = now
                    timeline.append((now, len(live_instances())))
            elif event.kind == "preempt":
                preemption = event.payload
                candidates = [
                    i for i in live_instances() if not i.draining
                ]
                if not candidates:
                    continue  # nothing left for the provider to reclaim
                victim = candidates[
                    preemption.target % len(candidates)
                ]
                preempted_total += 1
                # billing stops at the preemption instant (Eq. 1 is
                # billed only while the capacity actually exists)
                victim.released_at = now
                timeline.append((now, len(live_instances())))
                for wid in victim.worker_ids:
                    worker_epoch[wid] += 1
                    if wid in free:
                        free.remove(wid)
                    if wid in inflight:
                        batch, _done_at = inflight.pop(wid)
                        requeue(batch, now)
                    worker_busy_until[wid] = 0.0
                # replacement capacity pays the boot delay
                if (
                    len(live_instances())
                    < self.autoscale.min_instances
                ):
                    launch(now)
            elif event.kind == "control":
                window_capacity = (
                    live_worker_count() * self.autoscale.interval_s
                )
                utilisation = (
                    busy_window / window_capacity
                    if window_capacity > 0
                    else 1.0
                )
                busy_window = 0.0
                get_metrics().counter("fleet.control_ticks").inc()
                slo_burning = (
                    self.autoscale.scale_out_on_slo_burn
                    and telemetry is not None
                    and telemetry.slo is not None
                    and telemetry.slo.burning
                )
                if (
                    utilisation > self.autoscale.scale_out_above
                    or slo_burning
                ) and (
                    len(live_instances())
                    < self.autoscale.max_instances
                ):
                    get_metrics().counter("fleet.scale_out").inc()
                    if slo_burning:
                        get_metrics().counter(
                            "fleet.slo_scale_out"
                        ).inc()
                    launch(now)
                elif (
                    utilisation < self.autoscale.scale_in_below
                    and not slo_burning
                ):
                    get_metrics().counter("fleet.scale_in").inc()
                    try_release(now)
                if served + dropped < arrivals.size:
                    events.push(
                        now + self.autoscale.interval_s, "control", None
                    )
            dispatch(now)

        # requests still queued at the event horizon are undeliverable
        while pending:
            request_id, _ = pending.take(1)[0]
            drop_request(request_id, now)

        # release whatever is still running at the end
        for instance in instances:
            if instance.released_at is None:
                instance.released_at = now
        rate = (
            self.hourly_rate
            if self.hourly_rate is not None
            else self.itype.price_per_hour
        )
        cost = sum(
            hourly_rate_cost(
                rate,
                instance.released_at - instance.launched_at,
            )
            for instance in instances
        )
        seconds = np.array(
            [
                (i.released_at - i.launched_at)
                for i in instances
            ]
        )
        mean_instances = float(seconds.sum() / max(now, 1e-9))
        served_mask = status == _SERVED
        return AutoscaleReport(
            requests=arrivals.size,
            duration_s=now,
            latencies_s=latencies[served_mask],
            cost=cost,
            fleet_timeline=tuple(timeline),
            peak_instances=max(n for _, n in timeline),
            mean_instances=mean_instances,
            retries=retries_total,
            dropped=dropped,
            preempted=preempted_total,
        )

"""The bench trajectory recorder and its regression gate."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs import get_metrics
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchRecord,
    SCENARIOS,
    bench_paths,
    check,
    latest_record,
    next_index,
    record,
    run_suite,
)


def _fast_scenarios(evals: int = 5):
    """A cheap deterministic suite standing in for the real one."""

    def scenario() -> None:
        get_metrics().counter("fake.evals").inc(evals)
        get_metrics().gauge("fake.peak").set(1.0)

    return {"fake.scenario": scenario}


class TestRunSuite:
    def test_counters_captured_per_single_run(self):
        (entry,) = run_suite(_fast_scenarios(), repeats=3)
        assert entry.name == "fake.scenario"
        assert entry.wall_s >= 0.0
        # 3 repeats must not accumulate: one run's work exactly
        assert entry.counters == {"fake.evals": 5}

    def test_nondeterministic_scenario_rejected(self):
        calls = iter(range(100))

        def flaky() -> None:
            get_metrics().counter("n").inc(next(calls) + 1)

        with pytest.raises(AssertionError, match="nondeterministic"):
            run_suite({"flaky": flaky}, repeats=2)

    def test_only_filters_and_validates(self):
        scenarios = {**_fast_scenarios(), **_fast_scenarios(7)}
        with pytest.raises(KeyError):
            run_suite(scenarios, repeats=1, only=("missing",))

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            run_suite(_fast_scenarios(), repeats=0)

    def test_real_suite_names_are_stable(self):
        # CI and BENCH_*.json records key on these names
        assert set(SCENARIOS) == {
            "evalspace.grid",
            "serving.faulty",
            "serving.columnar",
            "allocation.greedy",
            "autoscale.surge",
            "fleet.routed",
            "fleet.columnar",
            "fleet.adaptive",
            "service.plan",
        }


class TestRecords:
    def test_record_writes_schema_versioned_sequence(self, tmp_path):
        first = record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        second = record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        assert first.name == "BENCH_1.json"
        assert second.name == "BENCH_2.json"
        payload = json.loads(first.read_text())
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["environment"]["python"]
        assert bench_paths(tmp_path) == [first, second]
        assert next_index(tmp_path) == 3
        assert latest_record(tmp_path).index == 2

    def test_round_trip(self, tmp_path):
        path = record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        restored = BenchRecord.read(path)
        assert restored.to_dict() == json.loads(path.read_text())
        assert restored.entry("fake.scenario").counters == {
            "fake.evals": 5
        }

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            BenchRecord.from_dict({"schema": "other/v1"})

    def test_empty_root(self, tmp_path):
        assert bench_paths(tmp_path) == []
        assert next_index(tmp_path) == 1
        assert latest_record(tmp_path) is None


class TestCheck:
    def test_no_baseline_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            check(tmp_path, scenarios=_fast_scenarios())

    def test_passes_against_fresh_record(self, tmp_path):
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        report = check(tmp_path, repeats=1, scenarios=_fast_scenarios())
        assert report.ok
        assert report.baseline_index == 1
        assert report.failures == ()
        assert any("ok" in line for line in report.lines)

    def test_injected_slowdown_fails(self, tmp_path):
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())

        def slow() -> None:
            get_metrics().counter("fake.evals").inc(5)
            get_metrics().gauge("fake.peak").set(1.0)
            time.sleep(0.05)

        report = check(
            tmp_path,
            repeats=1,
            tolerance=0.5,
            scenarios={"fake.scenario": slow},
        )
        assert not report.ok
        assert any("wall" in f for f in report.failures)
        assert any("SLOW" in line for line in report.lines)

    def test_counter_drift_fails_regardless_of_tolerance(self, tmp_path):
        record(tmp_path, repeats=1, scenarios=_fast_scenarios(5))
        report = check(
            tmp_path,
            repeats=1,
            tolerance=1e9,  # wall tolerance must never absorb work drift
            scenarios=_fast_scenarios(6),
        )
        assert not report.ok
        assert any("drifted" in f for f in report.failures)
        assert any("5 -> 6" in f for f in report.failures)

    def test_new_scenario_reported_not_failed(self, tmp_path):
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        grown = {**_fast_scenarios(), "brand.new": lambda: None}
        report = check(tmp_path, repeats=1, scenarios=grown)
        assert report.ok
        assert any("new scenario" in line for line in report.lines)

    def test_warn_ratio_surfaces_slowdown_without_failing(self, tmp_path):
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())

        def slow() -> None:
            get_metrics().counter("fake.evals").inc(5)
            get_metrics().gauge("fake.peak").set(1.0)
            time.sleep(0.05)

        report = check(
            tmp_path,
            repeats=1,
            tolerance=1e9,  # wide enough that only the warning fires
            warn_ratio=1.5,
            scenarios={"fake.scenario": slow},
        )
        assert report.ok
        assert any("warn threshold" in w for w in report.warnings)
        assert any("WARN" in line for line in report.lines)

    def test_trajectory_drift_vs_first_record_warns(self, tmp_path):
        def slow() -> None:
            get_metrics().counter("fake.evals").inc(5)
            get_metrics().gauge("fake.peak").set(1.0)
            time.sleep(0.05)

        # BENCH_1 fast, BENCH_2 already slow: a latest-only gate sees
        # no change, the trajectory comparison sees the creep
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        record(tmp_path, repeats=1, scenarios={"fake.scenario": slow})
        report = check(
            tmp_path,
            repeats=1,
            tolerance=1e9,
            warn_ratio=1.5,
            scenarios={"fake.scenario": slow},
        )
        assert report.ok
        assert any("trajectory drift" in w for w in report.warnings)

    def test_fail_ratio_hard_gates_trajectory_creep(self, tmp_path):
        def slow() -> None:
            get_metrics().counter("fake.evals").inc(5)
            get_metrics().gauge("fake.peak").set(1.0)
            time.sleep(0.05)

        # BENCH_1 fast, BENCH_2 already slow: each step passed the
        # per-step tolerance, but the trajectory budget catches the sum
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        record(tmp_path, repeats=1, scenarios={"fake.scenario": slow})
        report = check(
            tmp_path,
            repeats=1,
            tolerance=1e9,
            fail_ratio=2.0,
            scenarios={"fake.scenario": slow},
        )
        assert not report.ok
        assert any(
            "trajectory budget exceeded" in f for f in report.failures
        )
        # without fail_ratio the same creep only warns
        report = check(
            tmp_path,
            repeats=1,
            tolerance=1e9,
            scenarios={"fake.scenario": slow},
        )
        assert report.ok

    def test_cross_machine_baseline_demotes_wall_gates(self, tmp_path):
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        # rewrite the record as if it came from other hardware
        path = bench_paths(tmp_path)[-1]
        payload = json.loads(path.read_text())
        payload["environment"]["cpu_count"] = 9999
        path.write_text(json.dumps(payload))

        def slow() -> None:
            get_metrics().counter("fake.evals").inc(5)
            get_metrics().gauge("fake.peak").set(1.0)
            time.sleep(0.05)

        report = check(
            tmp_path,
            repeats=1,
            tolerance=0.5,
            fail_ratio=1.1,
            scenarios={"fake.scenario": slow},
        )
        # wall regressions (step and trajectory) become warnings...
        assert report.machine_drift
        assert report.ok
        assert any("different hardware" in w for w in report.warnings)
        assert any("wall" in w for w in report.warnings)
        # ...but counter drift still fails hard
        report = check(
            tmp_path,
            repeats=1,
            tolerance=1e9,
            scenarios=_fast_scenarios(6),
        )
        assert not report.ok
        assert any("drifted" in f for f in report.failures)

    def test_drift_message_sanitizes_stored_machine_string(
        self, tmp_path
    ):
        """Records are hand-editable JSON: a hostile ``machine`` value
        must not reach the terminal raw (control characters could
        spoof gate lines), and over-long values are capped."""
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        path = bench_paths(tmp_path)[-1]
        payload = json.loads(path.read_text())
        payload["environment"]["machine"] = (
            "evil\r\x1b[2Kok: no regressions\n" + "A" * 100
        )
        path.write_text(json.dumps(payload))
        report = check(
            tmp_path, repeats=1, scenarios=_fast_scenarios()
        )
        assert report.machine_drift
        drift = next(
            w for w in report.warnings if "different hardware" in w
        )
        assert "\r" not in drift and "\x1b" not in drift
        assert "\\x0d" in drift and "\\x1b" in drift
        assert "..." in drift
        assert "A" * 60 not in drift

    def test_same_machine_baseline_reports_no_drift(self, tmp_path):
        record(tmp_path, repeats=1, scenarios=_fast_scenarios())
        report = check(tmp_path, repeats=1, scenarios=_fast_scenarios())
        assert not report.machine_drift

    def test_repo_baseline_matches_current_code(self):
        """The committed BENCH_*.json must agree with today's counters.

        Wall times are machine-dependent, so only the deterministic
        work counters are compared here — exactly what ``--check``
        treats as tolerance-free.  Scenarios newer than the committed
        record are skipped, matching ``--check``'s "new scenario (no
        baseline)" semantics.
        """
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        baseline = latest_record(repo_root)
        if baseline is None:  # pragma: no cover - repo always has one
            pytest.skip("no BENCH_*.json committed")
        known = {e.name for e in baseline.entries}
        fresh = run_suite(repeats=1)
        for entry in fresh:
            if entry.name not in known:
                continue
            assert entry.counters == baseline.entry(entry.name).counters

"""Differential tests for the columnar serving/routing engines.

The columnar engine is an exact-replay rewrite: it must make the same
IEEE-754 float operations in the same order as the per-event reference,
so every comparison here is bit-for-bit (``repr`` / ``tobytes``), not
``allclose``.  The sweeps are property-style — seeds x fault plans x
batch policies x admission configs — deliberately covering the fast
paths *and* the branches that force the scalar fallbacks.

The one intentionally approximate kernel is
:func:`repro.serving.router.fluid_backlog_trajectory`, whose prefix-max
closed form regroups float terms; it is tested against the stepped
:class:`~repro.serving.router._RoutingState` with a tight tolerance.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.faults import FaultPlan, Preemption, Slowdown
from repro.cloud.instance import CloudInstance
from repro.errors import ConfigurationError
from repro.obs.telemetry import (
    GaugeStat,
    LatencyHistogram,
    ServingTelemetry,
    SloMonitor,
    SloPolicy,
)
from repro.pruning.base import PruneSpec
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    FleetRouter,
    FleetSpec,
    FleetWorkload,
    ReplicaSpec,
    ServingSimulator,
    evaluate_fleet,
    fluid_backlog_trajectory,
    poisson_arrivals,
)
from repro.serving.events import EventQueue
from repro.serving.fleet import clear_fleet_cache
from repro.serving.router import _RoutingState

TM = caffenet_time_model()
AM = caffenet_accuracy_model()
SWEET = PruneSpec({"conv1": 0.3, "conv2": 0.5})
SPECS = (
    PruneSpec.unpruned(),
    PruneSpec.uniform(("conv1", "conv2"), 0.3),
    SWEET,
)


def _config(itype: str, n: int = 1) -> ResourceConfiguration:
    return ResourceConfiguration(
        [CloudInstance(instance_type(itype)) for _ in range(n)]
    )


def _simulator(itype, spec, policy, engine) -> ServingSimulator:
    return ServingSimulator(
        TM, AM, _config(itype), spec, policy, engine=engine
    )


def _report_fingerprint(report) -> tuple:
    """Every float via repr / tobytes — equality means bit-equality."""
    return (
        report.requests,
        repr(report.duration_s),
        report.latencies_s.tobytes(),
        report.batch_sizes.tobytes(),
        repr(report.busy_s),
        report.worker_count,
        repr(report.cost),
        repr(report.accuracy),
        report.retries,
        report.dropped,
        report.preempted,
    )


def _telemetry_fingerprint(telemetry) -> tuple:
    hist = telemetry.latency
    parts = [
        (
            tuple(hist.counts),
            hist.count,
            repr(hist.total),
            repr(hist._min),
            repr(hist._max),
        )
    ]
    for gauge in (telemetry.batch_occupancy, telemetry.queue_depth):
        parts.append(repr(gauge.summary()))
    if telemetry.slo is not None:
        slo = telemetry.slo
        parts.append(
            (
                tuple(tuple(b) for b in slo._buckets),
                slo._requests,
                slo._drops,
                slo._slow,
                tuple(sorted(slo._alerting.items())),
                repr(slo.alerts),
            )
        )
    return tuple(parts)


def _fault_plan(rng: random.Random, duration: float) -> FaultPlan:
    kind = rng.randrange(5)
    if kind == 0:
        return FaultPlan()
    if kind == 1:
        return FaultPlan(timeout_s=rng.choice([0.05, 0.5, 3.0]))
    if kind == 2:
        return FaultPlan(
            preemptions=tuple(
                Preemption(
                    at_s=rng.uniform(0, duration),
                    target=rng.randrange(16),
                    recover_after_s=rng.choice([None, 0.5, 3.0]),
                )
                for _ in range(rng.randrange(1, 4))
            ),
            retry_budget=rng.randrange(0, 3),
            timeout_s=rng.choice([None, 1.0]),
        )
    if kind == 3:
        return FaultPlan(
            slowdowns=tuple(
                Slowdown(
                    target=rng.randrange(8),
                    start_s=rng.uniform(0, duration),
                    duration_s=rng.uniform(0.5, duration),
                    factor=rng.uniform(1.1, 4.0),
                )
                for _ in range(rng.randrange(1, 3))
            ),
        )
    return FaultPlan.sample(
        duration_s=duration,
        workers=8,
        mtbf_s=rng.choice([5.0, 20.0]),
        recovery_s=2.0,
        retry_budget=2,
        timeout_s=rng.choice([None, 0.8, 3.0]),
        seed=rng.randrange(10_000),
    )


class TestServingEngineEquivalence:
    """Both simulator engines must produce bit-identical runs."""

    @pytest.mark.parametrize("trial", range(24))
    def test_property_sweep_bit_identical(self, trial):
        rng = random.Random(9100 + trial)
        duration = rng.choice([4.0, 11.0])
        arrivals = poisson_arrivals(
            rng.choice([20.0, 120.0, 400.0]),
            duration,
            seed=rng.randrange(10_000),
        )
        itype = rng.choice(["p2.xlarge", "p2.8xlarge"])
        spec = rng.choice(SPECS)
        policy = BatchPolicy(
            max_batch=rng.choice([1, 4, 32, 64]),
            max_wait_s=rng.choice([0.0, 0.01, 0.05, 0.2]),
        )
        plan = _fault_plan(rng, duration)
        slo = (
            SloPolicy(latency_slo_s=rng.choice([0.1, 1.0]))
            if rng.random() < 0.7
            else None
        )
        results = {}
        for engine in ("event", "columnar"):
            telemetry = ServingTelemetry(slo=slo)
            report = _simulator(itype, spec, policy, engine).run(
                arrivals, faults=plan, telemetry=telemetry
            )
            results[engine] = (
                _report_fingerprint(report),
                _telemetry_fingerprint(telemetry),
            )
        assert results["event"] == results["columnar"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            _simulator("p2.xlarge", SWEET, BatchPolicy(8), "vector")

    def test_negative_arrivals_rejected_by_both_engines(self):
        for engine in ("event", "columnar"):
            sim = _simulator(
                "p2.xlarge", SWEET, BatchPolicy(8), engine
            )
            with pytest.raises(ValueError):
                sim.run(np.array([-1.0, 0.5]))


def _replicas(rng: random.Random, count: int) -> list[ReplicaSpec]:
    return [
        ReplicaSpec(
            name=f"r{i}",
            configuration=_config(
                rng.choice(["p2.xlarge", "p2.8xlarge"])
            ),
            spec=rng.choice(SPECS),
            policy=BatchPolicy(
                rng.choice([8, 32]), rng.choice([0.01, 0.05])
            ),
            hourly_rate=rng.choice([None, 1.0, 1.0, 2.5]),
            weight=rng.choice([None, None, 1.0, 3.0]),
        )
        for i in range(count)
    ]


def _admission(rng: random.Random) -> AdmissionPolicy | None:
    kind = rng.randrange(5)
    if kind == 0:
        return None
    if kind == 1:
        return AdmissionPolicy()  # open: both knobs disabled
    if kind == 2:
        return AdmissionPolicy(
            rate_per_s=rng.choice([0.0, 20.0, 150.0]),
            burst=rng.choice([0, 5, 64]),
        )
    if kind == 3:
        return AdmissionPolicy(
            queue_limit=rng.choice([0.0, 5.0, 200.0])
        )
    return AdmissionPolicy(
        rate_per_s=rng.choice([20.0, 150.0]),
        burst=rng.choice([1, 32]),
        queue_limit=rng.choice([3.0, 400.0]),
    )


class TestRouteDecisionEquivalence:
    """The columnar decision pass replays the reference loop exactly.

    The sweep covers every routing policy, every admission shape, and
    replica counts on both sides of the depth-shedding sum fallback
    (``>= 8`` replicas fall back to the reference loop outright).
    """

    @pytest.mark.parametrize("trial", range(60))
    def test_assignment_sweep_bit_identical(self, trial):
        rng = random.Random(4400 + trial)
        replicas = _replicas(rng, rng.choice([1, 2, 3, 4, 9]))
        routing = rng.choice(
            ["round-robin", "jsq", "weighted", "tiered"]
        )
        admission = _admission(rng)
        arrivals = poisson_arrivals(
            rng.choice([10.0, 80.0, 300.0]),
            rng.choice([3.0, 10.0]),
            seed=rng.randrange(10_000),
        )
        if rng.random() < 0.5:
            floors = None
        else:
            frng = np.random.default_rng(rng.randrange(10_000))
            floors = frng.choice(
                [0.0, 60.0, 75.0, 82.0, 99.5], size=arrivals.size
            )
        router = FleetRouter(
            TM, AM, replicas, routing=routing, admission=admission
        )
        columnar = router.route(arrivals, floors)
        reference = router._route_reference(
            np.asarray(arrivals, dtype=float),
            np.zeros(arrivals.size)
            if floors is None
            else np.asarray(floors, dtype=float),
            np.full(arrivals.size, np.inf),
        )
        assert np.array_equal(columnar, reference)

    def test_engine_event_routes_through_reference(self):
        arrivals = poisson_arrivals(80.0, 5.0, seed=3)
        kwargs = dict(
            routing="tiered",
            admission=AdmissionPolicy(rate_per_s=60.0, burst=16),
        )
        replicas = _replicas(random.Random(5), 3)
        event = FleetRouter(
            TM, AM, replicas, engine="event", **kwargs
        )
        columnar = FleetRouter(
            TM, AM, replicas, engine="columnar", **kwargs
        )
        floors = np.random.default_rng(5).choice(
            [0.0, 75.0], size=arrivals.size
        )
        assert np.array_equal(
            event.route(arrivals, floors),
            columnar.route(arrivals, floors),
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetRouter(
                TM, AM, _replicas(random.Random(0), 1), engine="x"
            )


def _adaptive_admission(rng: random.Random) -> AdmissionPolicy | None:
    kind = rng.randrange(5)
    if kind == 0:
        return None
    if kind == 1:
        return AdmissionPolicy(
            queue_limit=rng.choice([5.0, 60.0, 400.0])
        )
    if kind == 2:
        return AdmissionPolicy(
            queue_limit=60.0,
            degrade_limit=rng.choice([0.0, 10.0, 60.0]),
        )
    if kind == 3:
        return AdmissionPolicy(
            degrade_limit=rng.choice([0.0, 8.0, 120.0])
        )
    return AdmissionPolicy(
        rate_per_s=rng.choice([20.0, 150.0]),
        burst=rng.choice([1, 32]),
        queue_limit=rng.choice([30.0, 400.0]),
        degrade_limit=rng.choice([3.0, 30.0]),
    )


class TestAdaptiveDecisionEquivalence:
    """The adaptive policy's scalar replay is bit-identical too.

    Seeds x admission shapes (including ``degrade_limit``, which
    forces the depth-read paths) x deadline mixtures x replica counts
    on both sides of the ``>= 8``-replica reference fallback.
    """

    @pytest.mark.parametrize("trial", range(40))
    def test_adaptive_sweep_bit_identical(self, trial):
        rng = random.Random(8800 + trial)
        replicas = _replicas(rng, rng.choice([1, 2, 3, 4, 9]))
        admission = _adaptive_admission(rng)
        arrivals = poisson_arrivals(
            rng.choice([10.0, 80.0, 300.0]),
            rng.choice([3.0, 10.0]),
            seed=rng.randrange(10_000),
        )
        drng = np.random.default_rng(rng.randrange(10_000))
        floors = drng.choice(
            [0.0, 60.0, 75.0, 82.0, 99.5], size=arrivals.size
        )
        if rng.random() < 0.25:
            deadlines = None
        else:
            deadlines = drng.choice(
                [0.02, 0.3, 2.0, np.inf], size=arrivals.size
            )
        router = FleetRouter(
            TM, AM, replicas, routing="adaptive", admission=admission
        )
        columnar = router.route(arrivals, floors, deadlines)
        reference = router._route_reference(
            np.asarray(arrivals, dtype=float),
            np.asarray(floors, dtype=float),
            np.full(arrivals.size, np.inf)
            if deadlines is None
            else np.asarray(deadlines, dtype=float),
        )
        assert np.array_equal(columnar, reference)

    def test_degrade_limit_with_tiered_bit_identical(self):
        """The admission-level degradation rung is policy-agnostic;
        cover its columnar candidate-table path under ``tiered``."""
        for seed in (1, 2, 3):
            rng = random.Random(7700 + seed)
            replicas = _replicas(rng, 3)
            router = FleetRouter(
                TM,
                AM,
                replicas,
                routing="tiered",
                admission=AdmissionPolicy(
                    queue_limit=40.0, degrade_limit=10.0
                ),
            )
            arrivals = poisson_arrivals(200.0, 5.0, seed=seed)
            floors = np.random.default_rng(seed).choice(
                [0.0, 75.0, 99.0], size=arrivals.size
            )
            columnar = router.route(arrivals, floors)
            reference = router._route_reference(
                np.asarray(arrivals, dtype=float),
                np.asarray(floors, dtype=float),
                np.full(arrivals.size, np.inf),
            )
            assert np.array_equal(columnar, reference)


class TestFleetEngineEquivalence:
    """End-to-end: full fleet runs agree byte-for-byte across engines."""

    def _fleet_fingerprint(self, report) -> tuple:
        return (
            report.offered,
            report.shed,
            repr(report.duration_s),
            report.latencies_s.tobytes(),
            repr(report.cost),
            tuple(
                (o.assigned, o.served, o.dropped, repr(o.cost))
                for o in report.outcomes
            ),
        )

    def test_routed_fleet_bit_identical_across_engines(self):
        arrivals = poisson_arrivals(150.0, 12.0, seed=11)
        floors = np.random.default_rng(11).choice(
            [0.0, 75.0], size=arrivals.size
        )
        replicas = _replicas(random.Random(21), 3)
        fingerprints = {}
        for engine in ("event", "columnar"):
            router = FleetRouter(
                TM,
                AM,
                replicas,
                routing="tiered",
                admission=AdmissionPolicy(
                    rate_per_s=120.0, burst=32
                ),
                engine=engine,
            )
            fingerprints[engine] = self._fleet_fingerprint(
                router.run(arrivals, floors=floors)
            )
        assert fingerprints["event"] == fingerprints["columnar"]

    def test_adaptive_fleet_bit_identical_across_engines(self):
        """Seeds x fault plans x deadline mixtures: the full adaptive
        run (decisions + serving + floor accounting) agrees."""
        for seed in (2, 9, 17):
            rng = random.Random(600 + seed)
            replicas = [
                ReplicaSpec(
                    name=r.name,
                    configuration=r.configuration,
                    spec=r.spec,
                    policy=r.policy,
                    hourly_rate=r.hourly_rate,
                    faults=_fault_plan(rng, 12.0),
                )
                for r in _replicas(rng, 3)
            ]
            arrivals = poisson_arrivals(150.0, 12.0, seed=seed)
            drng = np.random.default_rng(seed)
            floors = drng.choice([0.0, 75.0], size=arrivals.size)
            deadlines = drng.choice(
                [0.05, 0.5, np.inf], size=arrivals.size
            )
            fingerprints = {}
            for engine in ("event", "columnar"):
                router = FleetRouter(
                    TM,
                    AM,
                    replicas,
                    routing="adaptive",
                    admission=AdmissionPolicy(
                        queue_limit=80.0, degrade_limit=30.0
                    ),
                    engine=engine,
                )
                report = router.run(
                    arrivals, floors=floors, deadlines=deadlines
                )
                fingerprints[engine] = self._fleet_fingerprint(
                    report
                ) + (
                    report.degraded,
                    tuple(o.at_floor for o in report.outcomes),
                )
            assert fingerprints["event"] == fingerprints["columnar"]

    def test_fleet_cache_shared_across_engines(self):
        """``engine`` is absent from the cache key on purpose: both
        engines produce the same report, so one evaluation serves
        both."""
        clear_fleet_cache()
        workload = FleetWorkload(40.0, 4.0, seed=9)
        replicas = tuple(_replicas(random.Random(33), 2))
        by_engine = {}
        for engine in ("columnar", "event"):
            spec = FleetSpec(
                TM, AM, replicas, routing="jsq", engine=engine
            )
            by_engine[engine] = evaluate_fleet(spec, workload)
        # second call was a pure cache hit: identical object
        assert by_engine["event"] is by_engine["columnar"]
        clear_fleet_cache()


class TestFluidBacklogTrajectory:
    def test_matches_stepped_state(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = int(rng.integers(1, 300))
            arrivals = np.sort(rng.uniform(0, 30, n))
            count = int(rng.integers(1, 5))
            capacities = rng.uniform(0.1, 50.0, count)
            assignment = rng.integers(-1, count, n)
            state = _RoutingState(capacities)
            expected = np.empty((n, count))
            for i, (t, a) in enumerate(zip(arrivals, assignment)):
                state.advance(float(t))
                if a >= 0:
                    state.assign(int(a))
                expected[i] = state.backlog
            got = fluid_backlog_trajectory(
                arrivals, assignment, capacities
            )
            assert got.shape == (n, count)
            assert np.allclose(got, expected, atol=1e-9)

    def test_sheds_pass_time_but_add_nothing(self):
        trajectory = fluid_backlog_trajectory(
            np.array([0.0, 1.0, 2.0]),
            np.array([0, -1, -1]),
            [0.5],
        )
        # one assignment at t=0, then pure drain at 0.5 req/s
        assert np.allclose(trajectory[:, 0], [1.0, 0.5, 0.0])

    def test_misaligned_assignment_rejected(self):
        with pytest.raises(ConfigurationError):
            fluid_backlog_trajectory(
                np.array([0.0, 1.0]), np.array([0]), [1.0]
            )


class TestTelemetryBatchApis:
    """Each columnar ingest path equals its scalar twin bit-for-bit."""

    def test_histogram_observe_array(self):
        values = np.random.default_rng(0).lognormal(-3, 1.5, 500)
        scalar, batched = LatencyHistogram(), LatencyHistogram()
        for v in values:
            scalar.observe(float(v))
        batched.observe_array(values[:123])
        batched.observe_array(values[123:])
        assert scalar.counts == batched.counts
        assert scalar.count == batched.count
        assert repr(scalar.total) == repr(batched.total)
        assert repr(scalar._min) == repr(batched._min)
        assert repr(scalar._max) == repr(batched._max)

    def test_gauge_observe_stream(self):
        values = np.random.default_rng(1).uniform(0, 40, 400)
        scalar, batched = GaugeStat("g"), GaugeStat("g")
        for v in values:
            scalar.observe(float(v))
        batched.observe_stream(values[:17])
        batched.observe_stream(values[17:])
        assert repr(scalar.summary()) == repr(batched.summary())

    def test_slo_record_stream(self):
        rng = np.random.default_rng(2)
        times = np.sort(rng.uniform(0, 600, 2000))
        dropped = rng.random(2000) < 0.2
        slow = (rng.random(2000) < 0.3) & ~dropped
        policy = SloPolicy(latency_slo_s=0.5)
        scalar, batched = SloMonitor(policy), SloMonitor(policy)
        for t, d, s in zip(times, dropped, slow):
            if d:
                scalar.record_dropped(float(t))
            else:
                scalar._record(float(t), slow=bool(s))
        split = 700
        batched.record_stream(
            times[:split], dropped[:split], slow[:split]
        )
        batched.record_stream(
            times[split:], dropped[split:], slow[split:]
        )
        assert list(scalar._buckets) == list(batched._buckets)
        assert scalar._requests == batched._requests
        assert scalar._drops == batched._drops
        assert scalar._slow == batched._slow
        assert scalar.alerts == batched.alerts

    def test_serving_telemetry_batch_stream(self):
        rng = np.random.default_rng(3)
        sizes = rng.integers(1, 33, 150)
        capacities = np.full(150, 32)
        queued = rng.integers(0, 90, 150)
        scalar = ServingTelemetry()
        batched = ServingTelemetry()
        for s, c, q in zip(sizes, capacities, queued):
            scalar.record_batch(0.0, int(s), int(c), int(q))
        batched.record_batch_stream(
            sizes.tolist(), capacities.tolist(), queued.tolist()
        )
        assert repr(scalar.summary()) == repr(batched.summary())

    def test_ingest_stream_matches_scalar_hooks(self):
        rng = np.random.default_rng(4)
        times = np.sort(rng.uniform(0, 120, 800))
        latencies = rng.lognormal(-2, 1, 800)
        dropped = rng.random(800) < 0.15
        policy = SloPolicy(latency_slo_s=0.25)
        scalar = ServingTelemetry(slo=policy)
        batched = ServingTelemetry(slo=policy)
        for t, lat, d in zip(times, latencies, dropped):
            if d:
                scalar.record_dropped(float(t))
            else:
                scalar.record_served(float(t), float(lat))
        batched.ingest_stream(times, latencies, dropped)
        assert _telemetry_fingerprint(scalar) == _telemetry_fingerprint(
            batched
        )


class TestEventQueueExtendSorted:
    def test_pop_order_matches_individual_pushes(self):
        rng = np.random.default_rng(5)
        times = np.sort(rng.uniform(0, 10, 200))
        pushed, bulk = EventQueue(), EventQueue()
        # pre-existing content on both queues
        for queue in (pushed, bulk):
            queue.push(4.25, "timer")
            queue.push(0.0, "preempt", "p")
        for idx, t in enumerate(times):
            pushed.push(float(t), "arrival", idx)
        bulk.extend_sorted(times, "arrival")
        while pushed:
            a, b = pushed.pop(), bulk.pop()
            assert (a.time, a.seq, a.kind, a.payload) == (
                b.time,
                b.seq,
                b.kind,
                b.payload,
            )
        assert not bulk

    def test_empty_batch_is_noop(self):
        queue = EventQueue()
        queue.extend_sorted([], "arrival")
        assert len(queue) == 0

    def test_unsorted_batch_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().extend_sorted([1.0, 0.5], "arrival")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().extend_sorted([-0.1, 0.5], "arrival")

    def test_explicit_payloads(self):
        queue = EventQueue()
        queue.extend_sorted([1.0, 2.0], "done", payloads=["a", "b"])
        assert queue.pop().payload == "a"
        assert queue.pop().payload == "b"

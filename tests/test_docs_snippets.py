"""Docs CI: execute every fenced python snippet; grep-gate coverage.

Two guarantees, both cheap to state and expensive to let rot:

1. every ```python block in ``docs/*.md`` and the README *runs* —
   blocks execute cumulatively per file (later snippets may use names
   an earlier snippet in the same file defined), in a temp cwd so
   artefact-writing examples stay clean;
2. the documentation mentions every CLI subcommand and every
   registered experiment artefact — introspected, not hand-listed, so
   adding a subcommand or artefact without documenting it fails CI.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]

_FENCE = re.compile(r"^```(\w*)\s*$")


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """Return (starting line, source) for each ```python fence."""
    blocks: list[tuple[int, str]] = []
    language, start, lines = None, 0, []
    for number, line in enumerate(path.read_text().splitlines(), 1):
        fence = _FENCE.match(line)
        if fence and language is None:
            language, start, lines = fence.group(1), number + 1, []
        elif fence:
            if language == "python":
                blocks.append((start, "\n".join(lines)))
            language = None
        elif language is not None:
            lines.append(line)
    return blocks


class TestSnippetsExecute:
    @pytest.mark.parametrize(
        "path", DOC_FILES, ids=lambda p: p.name
    )
    def test_fenced_python_runs(self, path, tmp_path, monkeypatch):
        blocks = python_blocks(path)
        if not blocks:
            pytest.skip(f"{path.name} has no python snippets")
        monkeypatch.chdir(tmp_path)
        namespace: dict = {"__name__": f"docs_{path.stem}"}
        for start, source in blocks:
            code = compile(
                source, f"{path.name}:{start}", "exec"
            )
            exec(code, namespace)  # noqa: S102 - that's the point

    def test_docs_actually_contain_snippets(self):
        # the suite must never silently skip everything
        assert sum(len(python_blocks(p)) for p in DOC_FILES) >= 10


def _documentation_corpus() -> str:
    paths = [*DOC_FILES, ROOT / "EXPERIMENTS.md"]
    return "\n".join(p.read_text() for p in paths)


class TestGrepGate:
    def test_every_cli_subcommand_is_documented(self):
        from repro.cli import build_parser

        corpus = _documentation_corpus()
        (subparsers,) = [
            action
            for action in build_parser()._subparsers._group_actions
            if hasattr(action, "choices")
        ]
        undocumented = [
            name
            for name in subparsers.choices
            if f"repro {name}" not in corpus
        ]
        assert not undocumented, (
            f"CLI subcommands missing from docs/README: {undocumented} "
            "(document them as `python -m repro <name> ...`)"
        )

    def test_every_artefact_is_documented(self):
        from repro.experiments.engine import REGISTRY

        corpus = _documentation_corpus()
        undocumented = [
            artefact
            for artefact in REGISTRY
            if f"`{artefact}`" not in corpus
        ]
        assert not undocumented, (
            f"experiment artefacts missing from docs: {undocumented} "
            "(EXPERIMENTS.md keeps the full index)"
        )

    def test_routing_policies_are_documented(self):
        from repro.serving import ROUTING_POLICIES

        serving_md = (ROOT / "docs" / "serving.md").read_text()
        for name in ROUTING_POLICIES:
            assert f"`{name}`" in serving_md, name

"""Figure 9: impact of accuracy on cloud execution time (Pareto study).

Paper results (Observation 4 / Section 4.3.3): with a 10-hour deadline
for one million Caffenet inferences over the p2 configuration space
there are 7 654 feasible configurations; five are Pareto-optimal for
each accuracy metric, spanning Top-1 27-53% / Top-5 45-78% and 3-5 hours;
picking the Pareto-optimal configuration at the highest accuracy halves
execution time versus other configurations with the same accuracy.

(The paper does not publish its exact 60 pruned variants, so the
feasible-set cardinality differs; the structural findings — a large
feasible set, a small multi-point Pareto frontier, and ~50% time saving
at the best accuracy — are the reproduction targets.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configuration_study import (
    STUDY_DEADLINE_S,
    ParetoStudy,
    pareto_study,
)
from repro.experiments.report import format_kv, format_table

__all__ = ["Fig9Result", "run", "compute", "render"]


@dataclass(frozen=True)
class Fig9Result:
    top1: ParetoStudy
    top5: ParetoStudy


def run(deadline_s: float = STUDY_DEADLINE_S) -> Fig9Result:
    return Fig9Result(
        top1=pareto_study("time", "top1", deadline_s=deadline_s),
        top5=pareto_study("time", "top5", deadline_s=deadline_s),
    )


def _study_data(study: ParetoStudy) -> dict:
    """One study as plain rows/series (the ExperimentResult.data shape)."""
    acc_lo, acc_hi = study.accuracy_range
    obj_lo, obj_hi = study.objective_range
    return {
        "metric": study.metric,
        "objective": study.objective,
        "total_points": study.total_points,
        "n_feasible": study.n_feasible,
        "n_pareto": study.n_pareto,
        "accuracy_range": [acc_lo, acc_hi],
        "objective_range": [obj_lo, obj_hi],
        "saving_at_best_accuracy": study.saving_at_best_accuracy(),
        "front": [
            {
                "degree": r.spec.label(),
                "configuration": r.configuration.label(),
                "accuracy": r.accuracy.get(study.metric),
                "objective": r.time_hours,
            }
            for r in study.front
        ],
    }


def compute(deadline_s: float = STUDY_DEADLINE_S) -> dict:
    """Structured data for Figure 9 (time-accuracy Pareto studies)."""
    result = run(deadline_s)
    return {
        "deadline_s": deadline_s,
        "top1": _study_data(result.top1),
        "top5": _study_data(result.top5),
    }


def _render_study(study: dict) -> str:
    acc_lo, acc_hi = study["accuracy_range"]
    t_lo, t_hi = study["objective_range"]
    metric = study["metric"]
    summary = format_kv(
        [
            ("points evaluated", study["total_points"]),
            ("feasible within deadline", study["n_feasible"]),
            ("Pareto-optimal", study["n_pareto"]),
            (f"{metric} range (%)", f"{acc_lo:.1f} - {acc_hi:.1f}"),
            ("time range (h)", f"{t_lo:.2f} - {t_hi:.2f}"),
            (
                "time saving at best accuracy",
                f"{study['saving_at_best_accuracy'] * 100:.0f}%",
            ),
        ]
    )
    rows = [
        (
            front["degree"],
            front["configuration"],
            f"{front['accuracy']:.1f}",
            f"{front['objective']:.2f}",
        )
        for front in study["front"]
    ]
    return summary + "\n" + format_table(
        ["Degree of pruning", "Configuration", f"{metric} (%)", "Time (h)"],
        rows,
    )


def render(data: dict | Fig9Result | None = None) -> str:
    if data is None:
        data = compute()
    elif isinstance(data, Fig9Result):
        data = {
            "top1": _study_data(data.top1),
            "top5": _study_data(data.top5),
        }
    return (
        "== (a) Top-1 ==\n"
        + _render_study(data["top1"])
        + "\n\n== (b) Top-5 ==\n"
        + _render_study(data["top5"])
    )

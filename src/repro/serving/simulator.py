"""The serving event loop and its report.

Each GPU of each instance in the configuration is one worker; service
time for a batch of ``b`` requests comes from the calibrated batching
model (``batch_time(b)``), so all the paper's machinery — pruning's time
fraction, device speedups, batch-size saturation — shapes the latency
distribution.  Billing is per-second pro-rated from simulation start to
the last completion, on every instance (the paper's Eq. 1 discipline).

The loop optionally runs under a :class:`repro.cloud.faults.FaultPlan`:
workers are preempted (in-flight batches cancelled and their requests
requeued against a per-request retry budget) and recover; batches run
through contention slowdown windows; queued requests past the plan's
timeout are dropped.  With a zero plan the event sequence — and hence
every float in the report — is identical to running with no plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.accuracy_model import AccuracyModel, AccuracyPair
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.faults import FaultPlan
from repro.cloud.pricing import hourly_rate_cost
from repro.errors import ConfigurationError
from repro.obs import get_metrics, get_tracer
from repro.perf.batching import BatchingModel
from repro.perf.latency import CalibratedTimeModel
from repro.pruning.base import PruneSpec
from repro.serving.batcher import BatchPolicy, PendingQueue
from repro.serving.events import EventQueue

__all__ = ["ServingSimulator", "ServingReport"]

# request lifecycle states
_PENDING, _SERVED, _DROPPED = 0, 1, 2


@dataclass(frozen=True)
class ServingReport:
    """Outcome of one serving simulation.

    ``latencies_s`` holds served requests only (request-id order); under
    a fault plan some requests may instead be dropped — by preemption
    beyond their retry budget, by the queueing timeout, or because the
    run ended with no capacity left to serve them.
    """

    requests: int
    duration_s: float
    latencies_s: np.ndarray
    batch_sizes: np.ndarray
    busy_s: float
    worker_count: int
    cost: float
    accuracy: AccuracyPair
    retries: int = 0
    dropped: int = 0
    preempted: int = 0

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Latency percentile in seconds (q in [0, 100])."""
        if self.latencies_s.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, q))

    @property
    def p50(self) -> float:
        """Median served latency in seconds."""
        return self.latency_percentile(50)

    @property
    def p99(self) -> float:
        """99th-percentile served latency in seconds."""
        return self.latency_percentile(99)

    @property
    def mean_latency(self) -> float:
        """Mean served latency in seconds (NaN when none served)."""
        if self.latencies_s.size == 0:
            return float("nan")
        return float(self.latencies_s.mean())

    @property
    def mean_batch(self) -> float:
        """Mean dispatched batch width."""
        if self.batch_sizes.size == 0:
            return 0.0
        return float(self.batch_sizes.mean())

    @property
    def served(self) -> int:
        """Requests that completed (arrived minus dropped)."""
        return self.requests - self.dropped

    @property
    def throughput(self) -> float:
        """Offered requests per second of simulated time (includes
        requests that were ultimately dropped)."""
        if self.duration_s == 0:
            return 0.0
        return self.requests / self.duration_s

    @property
    def goodput(self) -> float:
        """Successfully served requests per second of simulated time."""
        if self.duration_s == 0:
            return 0.0
        return self.served / self.duration_s

    @property
    def availability(self) -> float:
        """Fraction of offered requests that were served."""
        return self.served / self.requests

    @property
    def drop_rate(self) -> float:
        """Fraction of offered requests that were dropped."""
        return self.dropped / self.requests

    @property
    def utilisation(self) -> float:
        """Busy fraction across all workers over the run."""
        if self.duration_s == 0:
            return 0.0
        return self.busy_s / (self.worker_count * self.duration_s)

    def miss_rate(self, slo_s: float) -> float:
        """Fraction of *served* requests exceeding a latency SLO."""
        if self.latencies_s.size == 0:
            return 0.0
        return float((self.latencies_s > slo_s).mean())


class ServingSimulator:
    """Online inference serving over a cloud resource configuration.

    Parameters
    ----------
    time_model, accuracy_model:
        Calibrated models of the CNN being served.
    configuration:
        Instances whose GPUs form the worker pool.
    spec:
        Degree of pruning of the deployed model.
    policy:
        Batch-forming policy; ``max_batch`` is clamped to each device's
        memory-limited batch size.
    hourly_rate:
        Override for the fleet's hourly price (e.g. a spot rate from
        :func:`repro.cloud.pricing.spot_rate`); ``None`` bills the
        configuration's on-demand total.
    engine:
        ``"columnar"`` (default) runs the vectorised batch-granularity
        engine in :mod:`repro.serving.columnar`; ``"event"`` runs the
        original per-event loop.  The two are bit-identical (pinned by
        ``tests/test_columnar.py``); the per-event loop remains
        available for one release as the differential oracle.
    """

    def __init__(
        self,
        time_model: CalibratedTimeModel,
        accuracy_model: AccuracyModel,
        configuration: ResourceConfiguration,
        spec: PruneSpec,
        policy: BatchPolicy,
        hourly_rate: float | None = None,
        engine: str = "columnar",
    ) -> None:
        if time_model.name != accuracy_model.name:
            raise ConfigurationError("time/accuracy model mismatch")
        if hourly_rate is not None and hourly_rate < 0:
            raise ConfigurationError("hourly rate must be non-negative")
        if engine not in ("columnar", "event"):
            raise ConfigurationError(
                f"unknown serving engine {engine!r}; "
                "expected 'columnar' or 'event'"
            )
        self.engine = engine
        self.time_model = time_model
        self.accuracy_model = accuracy_model
        self.configuration = configuration
        self.spec = spec
        self.policy = policy
        self.hourly_rate = hourly_rate
        # one worker per GPU in use; each carries its batching model
        self._workers: list[tuple[BatchingModel, int]] = []
        for instance in configuration.instances:
            device = instance.itype.gpu
            batching = time_model.batching_model(spec, device)
            cap = min(policy.max_batch, time_model.max_batch(device))
            self._workers.extend(
                (batching, cap) for _ in range(instance.gpus_used)
            )

    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: np.ndarray,
        faults: FaultPlan | None = None,
        telemetry=None,
    ) -> ServingReport:
        """Serve all ``arrivals`` (sorted seconds); returns the report.

        ``faults`` schedules preemptions/slowdowns and sets the retry
        budget and queueing timeout; ``None`` is the reliable fleet.
        ``telemetry`` is an optional
        :class:`~repro.obs.telemetry.ServingTelemetry`: the event loop
        feeds it per-request latencies, drop events and queue/batch
        gauges (O(1) each, no retention), and its SLO monitor raises
        alert events; ``None`` skips every hook.  Telemetry never
        perturbs the simulation — the report is byte-identical with or
        without it.
        """
        from repro.obs.telemetry import record_report_gauges

        plan = faults if faults is not None else FaultPlan.none()
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.size == 0:
            raise ConfigurationError("no arrivals to serve")
        if np.any(np.diff(arrivals) < 0):
            raise ConfigurationError("arrivals must be sorted")
        if arrivals[0] < 0:
            # the per-event engine rejects this at Event construction;
            # the columnar engine never builds arrival Events, so both
            # engines validate up front with the same error
            raise ValueError("event time must be non-negative")
        with get_tracer().span(
            "serving.run",
            workers=len(self._workers),
            requests=int(arrivals.size),
        ) as span:
            if self.engine == "columnar":
                from repro.serving.columnar import columnar_run

                report = columnar_run(self, arrivals, plan, telemetry)
            else:
                report = self._run(arrivals, plan, telemetry)
        metrics = get_metrics()
        metrics.counter("serving.runs").inc()
        metrics.counter("serving.requests").inc(report.requests)
        metrics.counter("serving.batches").inc(report.batch_sizes.size)
        metrics.counter("serving.requeues").inc(report.retries)
        metrics.counter("serving.drops").inc(report.dropped)
        metrics.counter("serving.preemptions").inc(report.preempted)
        record_report_gauges(report, prefix="serving", registry=metrics)
        if telemetry is not None:
            telemetry.finalize(metrics, prefix="serving")
        if span is not None:
            span.tags["batches"] = int(report.batch_sizes.size)
            span.tags["dropped"] = report.dropped
        return report

    def _run(
        self, arrivals: np.ndarray, plan: FaultPlan, telemetry=None
    ) -> ServingReport:

        events = EventQueue()
        events.extend_sorted(arrivals, "arrival")
        for preemption in plan.preemptions:
            events.push(preemption.at_s, "preempt", preemption)

        pool = len(self._workers)
        pending = PendingQueue()
        free_workers = list(range(pool))
        latencies = np.full(arrivals.size, np.nan)
        status = np.zeros(arrivals.size, dtype=np.uint8)
        retry_count = np.zeros(arrivals.size, dtype=np.int64)
        batch_sizes: list[int] = []
        busy_s = 0.0
        timer_at: float | None = None
        now = 0.0
        down: set[int] = set()
        # incarnation counter per worker: a "done" event carrying a
        # stale epoch belongs to a batch cancelled by preemption
        epoch = [0] * pool
        inflight: dict[int, tuple[list, float]] = {}
        retries_total = 0
        preempted_total = 0

        def purge(now: float) -> None:
            """Drop queued requests past the plan's timeout (the queue
            is arrival-sorted, so expired entries sit at the head)."""
            if plan.timeout_s is None:
                return
            while (
                pending
                and now - pending.oldest_arrival()
                > plan.timeout_s + 1e-9
            ):
                request_id, _ = pending.take(1)[0]
                status[request_id] = _DROPPED
                if telemetry is not None:
                    telemetry.record_dropped(now)

        def requeue(batch: list, now: float) -> None:
            nonlocal retries_total
            for request_id, arrival_s in batch:
                retry_count[request_id] += 1
                if retry_count[request_id] > plan.retry_budget:
                    status[request_id] = _DROPPED
                    if telemetry is not None:
                        telemetry.record_dropped(now)
                else:
                    retries_total += 1
                    pending.requeue(request_id, arrival_s)

        def dispatch(now: float) -> None:
            nonlocal busy_s, timer_at
            purge(now)
            while free_workers and pending.should_dispatch(
                now, self.policy
            ):
                worker_id = free_workers.pop()
                batching, cap = self._workers[worker_id]
                batch = pending.take(cap)
                service = batching.batch_time(
                    len(batch)
                ) * plan.slowdown_factor(worker_id, now)
                busy_s += service
                batch_sizes.append(len(batch))
                if telemetry is not None:
                    telemetry.record_batch(
                        now, len(batch), cap, len(pending)
                    )
                inflight[worker_id] = (batch, now + service)
                events.push(
                    now + service,
                    "done",
                    (worker_id, batch, epoch[worker_id]),
                )
            if pending and free_workers:
                # waiting on max_wait: arm a timer for the oldest request
                due = pending.oldest_arrival() + self.policy.max_wait_s
                if timer_at is None or due < timer_at:
                    timer_at = due
                    events.push(max(due, now), "timer", None)

        events_dispatched = 0
        while events:
            event = events.pop()
            events_dispatched += 1
            now = event.time
            if event.kind == "arrival":
                pending.push(event.payload, now)
            elif event.kind == "done":
                worker_id, batch, batch_epoch = event.payload
                if batch_epoch != epoch[worker_id]:
                    continue  # batch was cancelled by a preemption
                inflight.pop(worker_id, None)
                free_workers.append(worker_id)
                for request_id, arrival_s in batch:
                    latencies[request_id] = now - arrival_s
                    status[request_id] = _SERVED
                    if telemetry is not None:
                        telemetry.record_served(now, now - arrival_s)
            elif event.kind == "timer":
                timer_at = None
            elif event.kind == "preempt":
                preemption = event.payload
                worker_id = preemption.target % pool
                if worker_id in down:
                    continue  # already out; nothing more to take
                preempted_total += 1
                down.add(worker_id)
                epoch[worker_id] += 1
                if worker_id in free_workers:
                    free_workers.remove(worker_id)
                if worker_id in inflight:
                    batch, done_at = inflight.pop(worker_id)
                    busy_s -= done_at - now  # the cancelled tail never ran
                    requeue(batch, now)
                if preemption.recover_after_s is not None:
                    events.push(
                        now + preemption.recover_after_s,
                        "recover",
                        worker_id,
                    )
            elif event.kind == "recover":
                worker_id = event.payload
                if worker_id in down:
                    down.remove(worker_id)
                    free_workers.append(worker_id)
            dispatch(now)

        get_metrics().counter("serving.events").inc(events_dispatched)

        # requests still queued when the event horizon ends had no
        # surviving capacity (or timed out unseen): they are dropped
        while pending:
            request_id, _ = pending.take(1)[0]
            status[request_id] = _DROPPED
            if telemetry is not None:
                telemetry.record_dropped(now)

        duration = now  # last event time
        served_mask = status == _SERVED
        rate = (
            self.hourly_rate
            if self.hourly_rate is not None
            else self.configuration.total_price_per_hour
        )
        cost = hourly_rate_cost(rate, duration)
        return ServingReport(
            requests=arrivals.size,
            duration_s=duration,
            latencies_s=latencies[served_mask],
            batch_sizes=np.asarray(batch_sizes),
            busy_s=busy_s,
            worker_count=pool,
            cost=cost,
            accuracy=self.accuracy_model.accuracy(self.spec),
            retries=retries_total,
            dropped=int((status == _DROPPED).sum()),
            preempted=preempted_total,
        )

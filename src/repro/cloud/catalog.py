"""Amazon EC2 GPU instance catalog — the paper's Table 3, verbatim.

Six instance types from the EC2 Oregon region, two GPU families:
p2 (NVIDIA K80) and g3 (NVIDIA M60).  Both families run Intel Xeon
E5-2686 v4 hosts; GPUs are virtualised.  Prices are the 2020 on-demand
hourly rates the paper lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perf.device import K80, M60, GPUDevice

__all__ = [
    "InstanceType",
    "EC2_CATALOG",
    "P2_TYPES",
    "G3_TYPES",
    "instance_type",
]


@dataclass(frozen=True)
class InstanceType:
    """One EC2 instance type (a row of the paper's Table 3)."""

    name: str
    vcpus: int
    gpus: int
    memory_gb: int
    gpu_memory_gb: int
    price_per_hour: float
    gpu: GPUDevice

    def __post_init__(self) -> None:
        if self.gpus < 1 or self.price_per_hour <= 0:
            raise ConfigurationError(f"invalid instance type {self.name!r}")

    @property
    def category(self) -> str:
        """Resource category ("p2" or "g3") — Figure 12 groups by this."""
        return self.name.split(".")[0]

    @property
    def price_per_gpu_hour(self) -> float:
        """Hourly price per GPU; constant within a category on EC2."""
        return self.price_per_hour / self.gpus


#: Table 3 rows.  GPU memory is the per-board total the paper lists;
#: per-GPU device memory comes from the GPUDevice spec.
EC2_CATALOG: tuple[InstanceType, ...] = (
    InstanceType("p2.xlarge", 4, 1, 61, 12, 0.90, K80),
    InstanceType("p2.8xlarge", 32, 8, 488, 96, 7.20, K80),
    InstanceType("p2.16xlarge", 64, 16, 732, 192, 14.40, K80),
    InstanceType("g3.4xlarge", 16, 1, 122, 8, 1.14, M60),
    InstanceType("g3.8xlarge", 32, 2, 244, 16, 2.28, M60),
    InstanceType("g3.16xlarge", 64, 4, 488, 32, 4.56, M60),
)

P2_TYPES: tuple[InstanceType, ...] = tuple(
    t for t in EC2_CATALOG if t.category == "p2"
)
G3_TYPES: tuple[InstanceType, ...] = tuple(
    t for t in EC2_CATALOG if t.category == "g3"
)

_BY_NAME = {t.name: t for t in EC2_CATALOG}


def instance_type(name: str) -> InstanceType:
    """Catalog lookup by name; raises :class:`ConfigurationError` if absent."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown instance type {name!r}; catalog has {sorted(_BY_NAME)}"
        ) from None

"""Async open-loop load generation against the planning control plane.

The harness replays a seeded *trace* of planning queries against a
target (a live HTTP server or an in-process
:class:`~repro.service.server.PlanningService`), open-loop: request
``i`` is issued at its precomputed arrival time regardless of whether
earlier requests have completed, so a slow control plane accumulates
measurable queueing delay instead of silently throttling the offered
load.  Arrival times come from the same generators the serving
simulators use (:mod:`repro.serving.arrivals`), so the offered process
is reproducible from ``(arrival, rate, duration, seed)`` alone.

Pieces:

* :class:`PlanMixture` — a seeded mixture over targets / deadlines /
  budgets that expands into concrete
  :class:`~repro.api.PlanRequest` traces (all sharing one grid, so a
  warm service answers every query from the evaluation-space cache);
* :class:`InProcessTarget` / :class:`HttpTarget` — where requests go;
* :func:`run_load` — replay a trace, returning a :class:`LoadReport`
  with throughput, latency percentiles (measured from each request's
  *scheduled* arrival, so queueing counts), per-status *and*
  per-error-code counts and the evaluation-cache hit/miss delta
  observed during the run.
* :func:`run_soak` — sustained operation: the trace is replayed in
  window-sized chunks, each chunk's latencies/costs/rates streamed
  into a :class:`~repro.obs.timeseries.TelemetryPipeline` whose
  detectors raise/resolve anomalies, and the whole run is summarised
  as a :class:`SoakReport` with per-metric first-vs-last drift
  verdicts.  :class:`SoakInjection` deterministically perturbs a
  middle slice of the run (a fault-plan mixture, a spot-price step, a
  latency tax) so the detection path itself is testable.

The ``service.plan`` bench scenario wraps :func:`run_load` over the
in-process target; ``python -m repro loadgen`` drives a live server
(``--soak`` switches to the sustained harness).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.api import ApiError, PlanRequest
from repro.obs.timeseries import (
    AnomalyPolicy,
    TelemetryPipeline,
    WindowSnapshot,
)
from repro.serving.arrivals import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)

__all__ = [
    "DriftVerdict",
    "HttpTarget",
    "InProcessTarget",
    "LoadReport",
    "PlanMixture",
    "SoakInjection",
    "SoakReport",
    "TRANSPORT_ERROR_STATUS",
    "run_load",
    "run_soak",
]

_GENERATORS = {
    "poisson": poisson_arrivals,
    "uniform": uniform_arrivals,
    "bursty": bursty_arrivals,
}

_CACHE_COUNTERS = ("evalspace.cache_hits", "evalspace.cache_misses")


# ----------------------------------------------------------------------
# request mixtures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanMixture:
    """A seeded mixture of planning queries over one shared grid.

    Each request draws independently (from ``seed``) a target from
    ``targets``, a deadline from ``deadlines_h`` and a budget from
    ``budgets`` (``None`` entries mean "constraint absent", selecting
    the frontier / min-budget / min-deadline query kinds).  Grid
    fields (``model``, ``images``, ``instances_per_type``,
    ``catalog``) are fixed across the mixture so every query plans
    over the *same* evaluated space — the warm-cache regime the
    control plane is sized for.
    """

    model: str = "caffenet"
    metric: str = "top5"
    targets: tuple[float, ...] = (78.0, 80.0)
    deadlines_h: tuple[float | None, ...] = (None, 6.0, 12.0)
    budgets: tuple[float | None, ...] = (None, 100.0)
    images: int = 20_000_000
    instances_per_type: int = 2
    catalog: tuple[str, ...] | None = None
    seed: int = 0

    def requests(self, n: int) -> list[PlanRequest]:
        """The first ``n`` requests of this mixture's trace."""
        rng = np.random.default_rng(self.seed)
        targets = rng.choice(np.asarray(self.targets, dtype=float), size=n)
        deadline_picks = rng.integers(0, len(self.deadlines_h), size=n)
        budget_picks = rng.integers(0, len(self.budgets), size=n)
        return [
            PlanRequest(
                target=float(targets[i]),
                model=self.model,
                metric=self.metric,
                deadline_h=self.deadlines_h[deadline_picks[i]],
                budget=self.budgets[budget_picks[i]],
                images=self.images,
                instances_per_type=self.instances_per_type,
                catalog=self.catalog,
            )
            for i in range(n)
        ]


# ----------------------------------------------------------------------
# targets
# ----------------------------------------------------------------------
def _parse_answer(payload: bytes) -> tuple[float | None, str | None]:
    """Pull ``(headline cost, error code)`` out of a response body.

    Either side may be ``None`` — an error body has no plan points, a
    frontier answer has no error, and garbage bytes have neither.
    """
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None, None
    if not isinstance(decoded, dict):
        return None, None
    cost = error_code = None
    error = decoded.get("error")
    if isinstance(error, dict) and "code" in error:
        error_code = str(error["code"])
    points = decoded.get("points")
    if isinstance(points, list) and points:
        try:
            cost = float(points[0]["cost"])
        except (KeyError, TypeError, ValueError):
            cost = None
    return cost, error_code


class InProcessTarget:
    """Drive a :class:`~repro.service.server.PlanningService` directly.

    No sockets: ``send`` calls ``dispatch`` on the calling thread, so
    the measured latency is pure control-plane work.  Cache counters
    are read from the current observability scope.
    """

    def __init__(self, service=None) -> None:
        if service is None:
            from repro.service.server import PlanningService

            service = PlanningService()
        self.service = service

    def send(self, body: bytes) -> int:
        """POST one plan request; returns the HTTP status."""
        status, _, _ = self.service.dispatch("POST", "/v1/plan", body)
        return status

    def probe(self, body: bytes) -> tuple[int, float | None, str | None]:
        """POST one plan request; returns (status, cost, error code)."""
        status, _, payload = self.service.dispatch(
            "POST", "/v1/plan", body
        )
        cost, error_code = _parse_answer(payload)
        return status, cost, error_code

    def cache_counters(self) -> dict[str, int]:
        """Current evaluation-space hit/miss counters."""
        from repro.obs import get_metrics

        counters = get_metrics().snapshot().get("counters", {})
        return {k: int(counters.get(k, 0)) for k in _CACHE_COUNTERS}


#: synthetic status for requests that failed below HTTP (refused /
#: reset / truncated connections, timeouts) — counts as an error in
#: :class:`LoadReport` instead of aborting the whole replay
TRANSPORT_ERROR_STATUS = 599


class HttpTarget:
    """Drive a live server over HTTP (stdlib ``urllib`` per request)."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def send(self, body: bytes) -> int:
        """POST one plan request; returns the HTTP status.

        Transport failures (connection refused/reset, timeouts,
        truncated responses) come back as
        :data:`TRANSPORT_ERROR_STATUS` — an open-loop harness must
        record a dropped connection as a data point, not die on it.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/plan",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        status, _, _ = self.probe(body)
        return status

    def probe(self, body: bytes) -> tuple[int, float | None, str | None]:
        """POST one plan request; returns (status, cost, error code).

        Transport failures report the error code ``"transport"``.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/plan",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                payload, status = response.read(), response.status
        except urllib.error.HTTPError as exc:
            payload, status = exc.read(), exc.code
        except (urllib.error.URLError, http.client.HTTPException, OSError):
            return TRANSPORT_ERROR_STATUS, None, "transport"
        cost, error_code = _parse_answer(payload)
        return status, cost, error_code

    def cache_counters(self) -> dict[str, int]:
        """Scrape ``/v1/metrics`` and parse the evaluation counters."""
        from repro.obs.export import metric_name

        with urllib.request.urlopen(
            f"{self.base_url}/v1/metrics", timeout=self.timeout_s
        ) as response:
            text = response.read().decode("utf-8")
        wanted = {
            f"{metric_name(name)}_total": name for name in _CACHE_COUNTERS
        }
        out = {name: 0 for name in _CACHE_COUNTERS}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            sample, _, value = line.rpartition(" ")
            if sample in wanted:
                out[wanted[sample]] = int(float(value))
        return out


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LoadReport:
    """What one load run measured.

    Latencies are completion minus *scheduled* arrival, in seconds —
    open-loop, so a saturated control plane shows up as queueing delay
    rather than reduced throughput.
    """

    requests: int
    wall_s: float
    latencies_s: np.ndarray = field(repr=False)
    status_counts: dict[int, int]
    cache_hits: int
    cache_misses: int
    #: API error code -> count (``"overloaded"`` sheds vs
    #: ``"invalid_request"`` rejects vs ``"transport"`` drops are
    #: distinguishable even when statuses collide)
    error_codes: dict[str, int] = field(default_factory=dict)
    #: headline cost of each 200 answer, in arrival order
    costs: np.ndarray = field(
        default_factory=lambda: np.empty(0), repr=False
    )

    @property
    def qps(self) -> float:
        """Completed requests per second of wall time."""
        return self.requests / self.wall_s if self.wall_s else 0.0

    @property
    def ok(self) -> int:
        """Requests answered 200."""
        return self.status_counts.get(200, 0)

    @property
    def errors(self) -> int:
        """Requests answered anything but 200 or 422 (infeasible
        answers are valid planning outcomes, not harness errors)."""
        return sum(
            n
            for status, n in self.status_counts.items()
            if status not in (200, 422)
        )

    @property
    def cache_hit_ratio(self) -> float:
        """Evaluation-cache hits over total probes during the run."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in seconds."""
        if self.latencies_s.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, q))

    @property
    def p50(self) -> float:
        """Median latency (s)."""
        return self.latency_percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile latency (s)."""
        return self.latency_percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile latency (s)."""
        return self.latency_percentile(99)

    def summary(self) -> dict:
        """JSON-ready headline numbers."""
        return {
            "requests": self.requests,
            "wall_s": self.wall_s,
            "qps": self.qps,
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "status": {
                str(k): v for k, v in sorted(self.status_counts.items())
            },
            "errors": self.errors,
            "error_codes": dict(sorted(self.error_codes.items())),
            "mean_cost": (
                float(self.costs.mean()) if self.costs.size else None
            ),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
        }

    def render(self) -> str:
        """Human-readable report block."""
        status = "  ".join(
            f"{k}:{v}" for k, v in sorted(self.status_counts.items())
        )
        lines = [
            f"requests  : {self.requests} in {self.wall_s:.2f}s "
            f"({self.qps:.0f} qps)",
            f"latency   : p50 {self.p50 * 1e3:.2f}ms  "
            f"p95 {self.p95 * 1e3:.2f}ms  "
            f"p99 {self.p99 * 1e3:.2f}ms",
            f"status    : {status}",
            f"cache     : {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"({self.cache_hit_ratio:.1%} hit ratio)",
        ]
        if self.error_codes:
            codes = "  ".join(
                f"{k}:{v}" for k, v in sorted(self.error_codes.items())
            )
            lines.append(f"errors    : {codes}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the generator
# ----------------------------------------------------------------------
def run_load(
    target,
    mixture: PlanMixture,
    *,
    rate_per_s: float,
    duration_s: float | None = None,
    n_requests: int | None = None,
    arrival: str = "uniform",
    seed: int | None = None,
    max_workers: int = 32,
) -> LoadReport:
    """Replay an open-loop planning trace against ``target``.

    Exactly one of ``duration_s`` / ``n_requests`` sizes the trace
    (``n_requests`` derives the duration from the rate, which keeps
    the request count — and therefore every cache counter —
    deterministic).  ``seed`` defaults to the mixture's.
    """
    if (duration_s is None) == (n_requests is None):
        raise ApiError(
            "invalid_request",
            "pass exactly one of duration_s / n_requests",
        )
    if rate_per_s <= 0:
        raise ApiError(
            "invalid_request", f"rate must be positive, got {rate_per_s}"
        )
    if arrival not in _GENERATORS:
        raise ApiError(
            "invalid_request",
            f"unknown arrival process {arrival!r}; "
            f"available: {sorted(_GENERATORS)}",
        )
    if n_requests is not None:
        duration_s = n_requests / rate_per_s
    arrivals = _GENERATORS[arrival](
        rate_per_s,
        duration_s,
        seed=mixture.seed if seed is None else seed,
    )
    if n_requests is not None:
        if arrivals.size < n_requests:
            extra = np.linspace(
                float(arrivals[-1]) if arrivals.size else 0.0,
                duration_s,
                num=n_requests - arrivals.size,
            )
            arrivals = np.concatenate([arrivals, extra])
        arrivals = arrivals[:n_requests]
    if arrivals.size == 0:
        raise ApiError(
            "invalid_request",
            "trace is empty; raise the rate or the duration",
        )
    requests = mixture.requests(arrivals.size)
    bodies = [
        json.dumps(r.to_dict(), sort_keys=True).encode("utf-8")
        for r in requests
    ]
    before = target.cache_counters()
    statuses, latencies, costs, codes, wall = asyncio.run(
        _replay(target, bodies, arrivals, max_workers)
    )
    after = target.cache_counters()
    status_counts: dict[int, int] = {}
    for status in statuses:
        status_counts[status] = status_counts.get(status, 0) + 1
    error_codes: dict[str, int] = {}
    for code in codes:
        if code is not None:
            error_codes[code] = error_codes.get(code, 0) + 1
    return LoadReport(
        requests=len(bodies),
        wall_s=wall,
        latencies_s=np.asarray(latencies, dtype=float),
        status_counts=status_counts,
        cache_hits=after["evalspace.cache_hits"]
        - before["evalspace.cache_hits"],
        cache_misses=after["evalspace.cache_misses"]
        - before["evalspace.cache_misses"],
        error_codes=error_codes,
        costs=np.asarray(
            [c for c in costs if c is not None], dtype=float
        ),
    )


async def _replay(
    target, bodies: list[bytes], arrivals: np.ndarray, max_workers: int
):
    """Issue every request at its arrival offset; gather latencies."""
    loop = asyncio.get_running_loop()
    n = len(bodies)
    statuses: list[int] = [0] * n
    latencies: list[float] = [0.0] * n
    costs: list[float | None] = [None] * n
    codes: list[str | None] = [None] * n
    probe = getattr(target, "probe", None)
    if probe is None:
        # bare targets (test stubs) only answer a status
        def probe(body, _send=target.send):
            return _send(body), None, None

    start = time.perf_counter()

    async def one(index: int, offset: float, body: bytes) -> None:
        delay = offset - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        scheduled = start + offset
        statuses[index], costs[index], codes[index] = (
            await loop.run_in_executor(executor, probe, body)
        )
        latencies[index] = time.perf_counter() - scheduled

    with ThreadPoolExecutor(max_workers=max_workers) as executor:
        await asyncio.gather(
            *(
                one(i, float(t), body)
                for i, (t, body) in enumerate(zip(arrivals, bodies))
            )
        )
    return statuses, latencies, costs, codes, time.perf_counter() - start


# ----------------------------------------------------------------------
# sustained soak
# ----------------------------------------------------------------------
#: what each soak metric's detector watches.  Latency is guarded on the
#: *median* with a 100% relative floor AND a 50ms absolute sigma floor:
#: a raise needs the median to sustain >= 5x its baseline and to move
#: by hundreds of milliseconds, so wall-clock jitter on a busy CI box
#: cannot page, while a real regression (a stalled cache, a saturated
#: executor, an injected latency tax) still does.  Costs and rates are
#: deterministic given the seed, so they keep tight floors.
SOAK_POLICIES: dict[str, AnomalyPolicy] = {
    "latency_s": AnomalyPolicy(
        stat="p50", rel_floor=1.0, min_sigma=0.05
    ),
    "cost": AnomalyPolicy(stat="mean"),
    "error_rate": AnomalyPolicy(stat="mean", min_sigma=0.02),
    "shed_rate": AnomalyPolicy(stat="mean", min_sigma=0.02),
    "cache_hit_ratio": AnomalyPolicy(stat="mean", min_sigma=0.02),
}

#: first-vs-last relative change beyond which a metric counts as
#: drifting (the ISSUE's "did sustained operation degrade it" bar)
DRIFT_TOLERANCE = 0.5


@dataclass(frozen=True)
class SoakInjection:
    """A deterministic mid-run perturbation for soak demos and tests.

    While the run's progress fraction is in ``[start_frac, end_frac)``
    the harness switches to ``mixture`` (when given — e.g. a
    fault-plan mixture whose requests the service rejects), multiplies
    observed costs by ``cost_scale`` (a simulated spot-price step) and
    adds ``extra_latency_s`` to observed latencies.  A pulse that ends
    before the run does should produce exactly one
    ``anomaly.raise``/``anomaly.resolve`` pair on the stepped metric.
    """

    start_frac: float = 1.0 / 3.0
    end_frac: float = 2.0 / 3.0
    mixture: PlanMixture | None = None
    cost_scale: float = 1.0
    extra_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_frac < self.end_frac <= 1.0:
            raise ApiError(
                "invalid_request",
                "need 0 <= start_frac < end_frac <= 1, got "
                f"[{self.start_frac}, {self.end_frac})",
            )
        if self.cost_scale <= 0:
            raise ApiError(
                "invalid_request",
                f"cost_scale must be positive, got {self.cost_scale}",
            )
        if self.extra_latency_s < 0:
            raise ApiError(
                "invalid_request",
                "extra_latency_s must be >= 0, got "
                f"{self.extra_latency_s}",
            )

    def active(self, frac: float) -> bool:
        """Is the pulse live at progress fraction ``frac``?"""
        return self.start_frac <= frac < self.end_frac


@dataclass(frozen=True)
class DriftVerdict:
    """Did one metric drift between the start and the end of the soak?

    ``first`` and ``last`` are the metric's watched statistic averaged
    over the head and tail window slices; ``rel_change`` is their
    relative difference against the head (``inf`` when the head is
    zero and the tail is not).
    """

    metric: str
    stat: str
    first: float
    last: float
    rel_change: float
    drifting: bool

    def as_dict(self) -> dict:
        """JSON-ready row."""
        return {
            "metric": self.metric,
            "stat": self.stat,
            "first": self.first,
            "last": self.last,
            "rel_change": self.rel_change,
            "drifting": self.drifting,
        }


@dataclass(frozen=True)
class SoakReport:
    """What a sustained soak run measured.

    ``windows`` is every closed :class:`WindowSnapshot` across every
    metric; ``anomaly_events`` the raise/resolve stream; ``verdicts``
    the per-metric first-vs-last drift calls.  :attr:`ok` means the
    run ended quiet: nothing drifted, nothing raised.
    """

    duration_s: float
    window_s: float
    requests: int
    windows: tuple[WindowSnapshot, ...] = field(repr=False)
    anomaly_events: tuple[dict, ...]
    verdicts: tuple[DriftVerdict, ...]

    @property
    def drifting(self) -> tuple[str, ...]:
        """Metrics whose drift verdict came back positive."""
        return tuple(v.metric for v in self.verdicts if v.drifting)

    @property
    def flagged(self) -> tuple[str, ...]:
        """Metrics implicated by either path — an anomaly event during
        the run or a positive end-to-end drift verdict."""
        names = set(self.drifting)
        names.update(e["metric"] for e in self.anomaly_events)
        return tuple(sorted(names))

    @property
    def raise_resolve_pairs(self) -> dict[str, tuple[int, int]]:
        """Per metric: (raises, resolves) observed during the run."""
        out: dict[str, tuple[int, int]] = {}
        for event in self.anomaly_events:
            raises, resolves = out.get(event["metric"], (0, 0))
            if event["kind"] == "anomaly.raise":
                raises += 1
            else:
                resolves += 1
            out[event["metric"]] = (raises, resolves)
        return out

    @property
    def ok(self) -> bool:
        """True when the soak ended quiet (no drift, no anomalies)."""
        return not self.flagged

    def summary(self) -> dict:
        """JSON-ready headline view (the ``--json`` body)."""
        return {
            "duration_s": self.duration_s,
            "window_s": self.window_s,
            "requests": self.requests,
            "windows": len(self.windows),
            "ok": self.ok,
            "flagged": list(self.flagged),
            "anomaly_events": list(self.anomaly_events),
            "verdicts": [v.as_dict() for v in self.verdicts],
        }

    def window_rows(self) -> list[dict]:
        """Every closed window as a JSON row (the metrics artifact)."""
        return [w.as_dict() for w in self.windows]

    def render(self) -> str:
        """Human-readable soak verdict block."""
        lines = [
            f"soak      : {self.requests} requests over "
            f"{self.duration_s:.0f}s in {self.window_s:g}s windows "
            f"({len(self.windows)} closed)",
        ]
        for verdict in self.verdicts:
            flag = "DRIFT" if verdict.drifting else "ok"
            lines.append(
                f"  {verdict.metric:<16} {verdict.stat:<5} "
                f"{verdict.first:.4g} -> {verdict.last:.4g} "
                f"({verdict.rel_change:+.1%})  {flag}"
            )
        if self.anomaly_events:
            for event in self.anomaly_events:
                lines.append(
                    f"  {event['kind']:<16} {event['metric']} "
                    f"window {event['window']} (z={event['z']:+.1f})"
                )
        else:
            lines.append("  no anomalies raised")
        lines.append(f"verdict   : {'ok' if self.ok else 'DEGRADED'}")
        return "\n".join(lines)


def _drift_verdicts(
    pipeline: TelemetryPipeline, tolerance: float
) -> tuple[DriftVerdict, ...]:
    """First-vs-last drift calls over every watched series."""
    verdicts = []
    for name, series in sorted(pipeline.series.items()):
        detector = pipeline.detectors.get(name)
        stat = detector.policy.stat if detector is not None else "mean"
        rows = [
            w
            for w in series.windows
            if w.count > 0 and math.isfinite(w.stat(stat))
        ]
        if len(rows) < 2:
            continue
        # head/tail slices: up to a minute each, at most a third of
        # the run so they never overlap
        k = max(1, min(len(rows) // 3, int(60.0 / series.window_s)))
        first = float(np.mean([w.stat(stat) for w in rows[:k]]))
        last = float(np.mean([w.stat(stat) for w in rows[-k:]]))
        if first != 0.0:
            rel = (last - first) / abs(first)
        else:
            rel = math.inf if last != 0.0 else 0.0
        verdicts.append(
            DriftVerdict(
                metric=name,
                stat=stat,
                first=first,
                last=last,
                rel_change=rel,
                drifting=abs(rel) > tolerance,
            )
        )
    return tuple(verdicts)


def run_soak(
    target,
    mixture: PlanMixture,
    *,
    rate_per_s: float,
    duration_s: float,
    window_s: float = 1.0,
    arrival: str = "uniform",
    seed: int | None = None,
    inject: SoakInjection | None = None,
    drift_tolerance: float = DRIFT_TOLERANCE,
    max_workers: int = 32,
) -> SoakReport:
    """Sustained soak: replay the trace window by window, streaming
    each chunk into windowed detectors, and verdict the drift.

    The trace is chunked into ``duration_s / window_s`` windows of
    ``round(rate * window_s)`` requests each (chunk ``w`` reseeded as
    ``seed + w``, so the offered load is deterministic end to end).
    Chunk observations are stamped mid-window at *scheduled* stream
    time — the stream clock advances with the trace, not the wall, so
    two soaks of the same seed land every observation in the same
    window regardless of machine speed.  ``inject`` perturbs the
    middle of the run; see :class:`SoakInjection`.
    """
    if duration_s <= 0:
        raise ApiError(
            "invalid_request",
            f"duration_s must be positive, got {duration_s}",
        )
    if window_s <= 0:
        raise ApiError(
            "invalid_request",
            f"window_s must be positive, got {window_s}",
        )
    n_windows = max(1, int(round(duration_s / window_s)))
    per_window = max(1, int(round(rate_per_s * window_s)))
    base_seed = mixture.seed if seed is None else seed
    pipeline = TelemetryPipeline(window_s=window_s)
    for name, policy in SOAK_POLICIES.items():
        pipeline.watch(name, policy)
    total = 0
    for w in range(n_windows):
        frac = w / n_windows
        injecting = inject is not None and inject.active(frac)
        chunk_mixture = mixture
        if injecting and inject.mixture is not None:
            chunk_mixture = inject.mixture
        chunk_mixture = replace(chunk_mixture, seed=base_seed + w)
        report = run_load(
            target,
            chunk_mixture,
            rate_per_s=rate_per_s,
            n_requests=per_window,
            arrival=arrival,
            seed=base_seed + w,
            max_workers=max_workers,
        )
        total += report.requests
        t = (w + 0.5) * window_s
        latencies = report.latencies_s
        if injecting and inject.extra_latency_s:
            latencies = latencies + inject.extra_latency_s
        pipeline.observe_many("latency_s", t, latencies.tolist())
        costs = report.costs
        if injecting and inject.cost_scale != 1.0:
            costs = costs * inject.cost_scale
        if costs.size:
            pipeline.observe_many("cost", t, costs.tolist())
        shed = report.status_counts.get(503, 0)
        pipeline.observe_many(
            "shed_rate",
            t,
            [1.0] * shed + [0.0] * (report.requests - shed),
        )
        pipeline.observe_many(
            "error_rate",
            t,
            [1.0] * report.errors
            + [0.0] * (report.requests - report.errors),
        )
        if report.cache_hits + report.cache_misses > 0:
            pipeline.observe(
                "cache_hit_ratio", t, report.cache_hit_ratio
            )
    pipeline.flush()
    windows = tuple(
        w
        for _, series in sorted(pipeline.series.items())
        for w in series.windows
    )
    return SoakReport(
        duration_s=n_windows * window_s,
        window_s=window_s,
        requests=total,
        windows=windows,
        anomaly_events=tuple(pipeline.anomaly_events()),
        verdicts=_drift_verdicts(pipeline, drift_tolerance),
    )

"""Elementwise activation layers: ReLU and Softmax.

These carry no weights and negligible compute relative to convolutions,
but they still move activation bytes — the roofline latency model counts
that traffic so that the paper's "other" time slice in Figure 3 is non-zero.
"""

from __future__ import annotations

import numpy as np

from repro.cnn.layers import ITEMSIZE, Layer, LayerStats

__all__ = ["ReLU", "Softmax"]


def _size(shape: tuple[int, ...]) -> int:
    size = 1
    for d in shape:
        size *= d
    return size


class ReLU(Layer):
    """Rectified linear unit, applied elementwise on any-rank input."""

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        size = _size(input_shape)
        return LayerStats(
            flops=size,
            input_bytes=size * ITEMSIZE,
            output_bytes=size * ITEMSIZE,
            weight_bytes=0,
            params=0,
        )


class Softmax(Layer):
    """Numerically-stable softmax over the last axis."""

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=-1, keepdims=True)

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        size = _size(input_shape)
        # exp + subtract + divide + reductions ~ 5 ops/element
        return LayerStats(
            flops=5 * size,
            input_bytes=size * ITEMSIZE,
            output_bytes=size * ITEMSIZE,
            weight_bytes=0,
            params=0,
        )

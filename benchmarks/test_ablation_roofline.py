"""Ablation B: roofline latency model vs pure-FLOPs-proportional time.

DESIGN.md design-choice #1: a pure FLOP-proportional model makes conv2
the most expensive Caffenet layer (447 vs 211 MFLOPs); the paper
*measured* conv1 at 51% of time.  The roofline's memory term plus the
measurement-driven per-layer scales recover the published distribution;
this ablation quantifies how far the FLOPs-only model is off.
"""

from __future__ import annotations

import pytest

from repro.calibration.caffenet import CAFFENET_TIME_SHARES
from repro.cnn.flops import flop_breakdown
from repro.cnn.models import CAFFENET_CONV_LAYERS, build_caffenet
from repro.perf.device import K80
from repro.perf.latency import RooflineLatencyModel, fit_layer_scales


@pytest.fixture(scope="module")
def network():
    return build_caffenet(init="const")


def _l1_error(shares: dict[str, float]) -> float:
    return sum(
        abs(shares[l] - CAFFENET_TIME_SHARES[l])
        for l in CAFFENET_CONV_LAYERS
    )


def test_flops_only_distribution(benchmark, network):
    """FLOP-proportional shares: misranks conv1/conv2 vs the paper."""

    def flops_shares():
        flops = flop_breakdown(network)
        total = sum(flops.values())
        return {name: f / total for name, f in flops.items()}

    shares = benchmark(flops_shares)
    # the failure mode this ablation documents:
    assert shares["conv2"] > shares["conv1"]
    assert _l1_error(shares) > 0.30


def test_fitted_roofline_distribution(benchmark, network):
    """Calibrated roofline: reproduces the measured Figure 3 shares."""

    def fitted_shares():
        base = RooflineLatencyModel(K80)
        scales = fit_layer_scales(network, base, CAFFENET_TIME_SHARES)
        fitted = RooflineLatencyModel(K80, layer_scales=scales)
        return fitted.time_distribution(network)

    shares = benchmark(fitted_shares)
    assert shares["conv1"] > shares["conv2"]
    assert _l1_error(shares) < 0.03

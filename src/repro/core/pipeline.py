"""The end-to-end three-stage approach of the paper's Figure 2.

Stage 1 — *application characterization*: layer time distribution,
single-inference response to pruning, GPU saturation point.

Stage 2 — *measurements*: evaluate every degree of pruning on a reference
instance, producing the list of (degree, time, cost, TAR, CAR) records.

Stage 3 — *model + Pareto optimization*: evaluate the cross product of
degrees and resource configurations, filter by the deadline/budget, and
extract the time-accuracy and cost-accuracy Pareto frontiers.

:class:`CostAccuracyPipeline` wires the three stages over the calibrated
models; the experiment modules and examples drive it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.calibration.accuracy_model import AccuracyModel
from repro.cloud.catalog import InstanceType, instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.cloud.simulator import CloudSimulator, SimulationResult
from repro.core.evalspace import SpaceSpec, evaluate
from repro.core.pareto import ParetoPoint, pareto_front
from repro.perf.latency import CalibratedTimeModel
from repro.perf.measurement import MeasurementRecord
from repro.pruning.schedule import DegreeOfPruning

__all__ = ["ConfigurationPoint", "CostAccuracyPipeline", "Characterization"]


@dataclass(frozen=True)
class Characterization:
    """Stage-1 output: the application's performance fingerprint."""

    layer_time_shares: dict[str, float]
    single_inference_s: float
    single_inference_pruned_s: float
    saturation_batch: int


@dataclass(frozen=True)
class ConfigurationPoint:
    """One point of the stage-3 configuration space."""

    result: SimulationResult
    feasible: bool

    @property
    def spec_label(self) -> str:
        """Human-readable degree-of-pruning label."""
        return self.result.spec.label()

    @property
    def config_label(self) -> str:
        """Human-readable resource-configuration label."""
        return self.result.configuration.label()


class CostAccuracyPipeline:
    """Characterize -> measure -> model+Pareto, per the paper's Figure 2."""

    def __init__(
        self,
        time_model: CalibratedTimeModel,
        accuracy_model: AccuracyModel,
        reference_type: InstanceType | str = "p2.xlarge",
    ) -> None:
        self.time_model = time_model
        self.accuracy_model = accuracy_model
        if isinstance(reference_type, str):
            reference_type = instance_type(reference_type)
        self.reference = CloudInstance(reference_type)
        self.simulator = CloudSimulator(time_model, accuracy_model)

    # ------------------------------------------------------------------
    # stage 1
    # ------------------------------------------------------------------
    def characterize(
        self, layer_time_shares: dict[str, float]
    ) -> Characterization:
        """Stage 1: summarize layer shares, prune response and saturation.

        ``layer_time_shares`` comes from per-layer measurement (Figure 3
        calibration data or a roofline-model distribution).
        """
        from repro.pruning.base import PruneSpec

        device = self.reference.itype.gpu
        all_layers = list(self.time_model.time_curves)
        heavy = PruneSpec.uniform(all_layers, 0.9)
        batching = self.time_model.batching_model(
            PruneSpec.unpruned(), device
        )
        return Characterization(
            layer_time_shares=dict(layer_time_shares),
            single_inference_s=self.time_model.single_inference(
                PruneSpec.unpruned(), device
            ),
            single_inference_pruned_s=self.time_model.single_inference(
                heavy, device
            ),
            saturation_batch=batching.knee_batch(),
        )

    # ------------------------------------------------------------------
    # stage 2
    # ------------------------------------------------------------------
    def measure(
        self, degrees: Sequence[DegreeOfPruning], images: int
    ) -> list[MeasurementRecord]:
        """Stage 2: per-degree time/cost/accuracy on the reference instance."""
        space = evaluate(
            SpaceSpec.from_simulator(
                self.simulator,
                degrees,
                [ResourceConfiguration([self.reference])],
                images,
            )
        )
        return [
            MeasurementRecord(
                spec=sim.spec,
                time_s=sim.time_s,
                cost=sim.cost,
                top1=sim.accuracy.top1,
                top5=sim.accuracy.top5,
            )
            for sim in space.results
        ]

    # ------------------------------------------------------------------
    # stage 3
    # ------------------------------------------------------------------
    def explore(
        self,
        degrees: Sequence[DegreeOfPruning],
        configurations: Sequence[ResourceConfiguration],
        images: int,
        deadline_s: float | None = None,
        budget: float | None = None,
    ) -> list[ConfigurationPoint]:
        """Stage 3a: evaluate the full (degree x configuration) space."""
        space = evaluate(
            SpaceSpec.from_simulator(
                self.simulator, degrees, configurations, images
            )
        )
        feasible = space.feasible_mask(deadline_s, budget)
        return [
            ConfigurationPoint(result=sim, feasible=bool(ok))
            for sim, ok in zip(space.results, feasible)
        ]

    @staticmethod
    def feasible(
        points: Sequence[ConfigurationPoint],
    ) -> list[ConfigurationPoint]:
        """The points that satisfy the stage-3 constraints."""
        return [p for p in points if p.feasible]

    @staticmethod
    def pareto(
        points: Sequence[ConfigurationPoint],
        objective: str = "time",
        metric: str = "top5",
    ) -> list[ParetoPoint[ConfigurationPoint]]:
        """Stage 3b: Pareto frontier of the feasible set.

        ``objective`` is ``"time"`` (hours) or ``"cost"`` (dollars);
        ``metric`` selects Top-1 or Top-5 accuracy.
        """
        if objective not in ("time", "cost"):
            raise ValueError(f"objective must be 'time' or 'cost', got {objective!r}")
        triples = []
        for p in points:
            if not p.feasible:
                continue
            obj = (
                p.result.time_hours if objective == "time" else p.result.cost
            )
            triples.append((p.result.accuracy.get(metric), obj, p))
        return pareto_front(triples)

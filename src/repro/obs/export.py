"""Exporters: get traces and metrics out of the process.

Spans and metric snapshots are only useful if they can leave the
process in formats other tools read:

* :func:`chrome_trace` — Chrome trace-event JSON from a trace (load it
  at ``ui.perfetto.dev`` or ``chrome://tracing``).  Spans become ``X``
  (complete) events with microsecond timestamps; nesting is conveyed by
  event containment on a shared thread id, which is how both viewers
  reconstruct the flame graph.
* :func:`prometheus_text` / :func:`prometheus_text_multi` — Prometheus /
  OpenMetrics text exposition of a :class:`MetricsRegistry` snapshot.
  Counters expose ``_total`` samples, gauges expose their last value,
  timers expose a ``summary`` family (quantiles + ``_count``/``_sum``).
* :func:`metrics_json` — the flat JSON dump (schema
  ``repro.metrics/v1``) for anything that just wants the numbers.

All exporters consume the *snapshot* forms (``Tracer.as_dicts()``,
``MetricsRegistry.snapshot()``), so they work equally on live objects
and on snapshots pickled back from worker processes or loaded from an
:class:`ExperimentResult`.
"""

from __future__ import annotations

import json
import math
import os
import re
from collections.abc import Iterable, Mapping
from pathlib import Path

__all__ = [
    "METRICS_SCHEMA",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_trace_from_job",
    "merge_chrome_traces",
    "metric_name",
    "metrics_json",
    "prometheus_text",
    "prometheus_text_multi",
    "write_chrome_trace",
]

METRICS_SCHEMA = "repro.metrics/v1"

#: timer quantiles exposed in the summary family
_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _span_dicts(trace) -> list[dict]:
    """Normalise a Tracer / Span iterable / dict iterable to dicts."""
    if hasattr(trace, "as_dicts"):
        return [dict(s) for s in trace.as_dicts()]
    out = []
    for span in trace:
        out.append(
            dict(span) if isinstance(span, Mapping) else span.as_dict()
        )
    return out


def chrome_trace_events(
    trace,
    *,
    pid: int = 1,
    tid: int = 1,
) -> list[dict]:
    """Spans as Chrome ``X`` (complete) events, in start order.

    ``ts``/``dur`` are microseconds from the tracer's epoch.  Spans
    still open when the trace was captured are skipped — a complete
    event needs a duration.  Tags ride along in ``args``.
    """
    events = []
    for span in _span_dicts(trace):
        if span.get("wall_s") is None:
            continue
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": round(span["start_s"] * 1e6, 3),
                "dur": round(span["wall_s"] * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": {
                    **{str(k): v for k, v in span.get("tags", {}).items()},
                    "cpu_s": span.get("cpu_s"),
                    "span_id": span.get("span_id"),
                },
            }
        )
    return events


def _thread_name_event(pid: int, tid: int, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def chrome_trace(
    trace,
    *,
    pid: int = 1,
    tid: int = 1,
    process_name: str = "repro",
    thread_name: str | None = None,
) -> dict:
    """A complete, Perfetto-loadable trace document from one trace."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        }
    ]
    if thread_name is not None:
        events.append(_thread_name_event(pid, tid, thread_name))
    events.extend(chrome_trace_events(trace, pid=pid, tid=tid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merge_chrome_traces(
    named: Mapping[str, Iterable],
    *,
    process_name: str = "repro",
) -> dict:
    """Merge several traces into one document, one thread per name.

    Used by ``repro experiments --trace-out``: each artefact's trace
    becomes its own named thread, so the run reads as a swimlane chart.
    Names are sorted for a stable document.
    """
    pid = 1
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, name in enumerate(sorted(named), start=1):
        events.append(_thread_name_event(pid, tid, name))
        events.extend(
            chrome_trace_events(named[name], pid=pid, tid=tid)
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_from_job(job, *, process_name: str = "batch job") -> dict:
    """Chrome trace of a batch :class:`~repro.cloud.trace.JobTrace`.

    One thread per instance, a ``compute`` span for its busy time and an
    ``idle (straggler wait)`` span for the tail it spends waiting on the
    makespan — the Eq. 4 artefact, as a Perfetto swimlane.
    """
    pid = 1
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, inst in enumerate(job.instances, start=1):
        events.append(_thread_name_event(pid, tid, inst.label))
        events.append(
            {
                "name": "compute",
                "ph": "X",
                "ts": 0.0,
                "dur": round(inst.busy_s * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": {
                    "images": inst.images,
                    "batch_width": inst.batch_width,
                    "batches_per_gpu": inst.batches_per_gpu,
                    "gpus_used": inst.gpus_used,
                },
            }
        )
        if inst.idle_s > 0:
            events.append(
                {
                    "name": "idle (straggler wait)",
                    "ph": "X",
                    "ts": round(inst.busy_s * 1e6, 3),
                    "dur": round(inst.idle_s * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": {"straggler": job.straggler},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | os.PathLike, document: dict
) -> Path:
    """Write a trace document (atomically) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(document, default=str) + "\n")
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# Prometheus / OpenMetrics text exposition
# ----------------------------------------------------------------------
def metric_name(name: str, prefix: str = "repro_") -> str:
    """Sanitise a dotted metric name to the Prometheus charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"{prefix}{cleaned}"


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _snapshot_families(
    snapshot: Mapping, labels: Mapping[str, str] | None
) -> dict[str, tuple[str, list[str]]]:
    """``{family_name: (type, sample_lines)}`` for one snapshot.

    Quantile samples are emitted only for timers with at least one
    retained sample — a 0-sample timer still exposes ``_count`` and
    ``_sum`` but no ``NaN`` quantiles, so the exposition always parses.
    """
    out: dict[str, tuple[str, list[str]]] = {}
    lt = _labels_text(labels)
    for name, value in snapshot.get("counters", {}).items():
        fam = metric_name(name)
        out[fam] = (
            "counter",
            [f"{fam}_total{lt} {_format_value(value)}"],
        )
    for name, value in snapshot.get("gauges", {}).items():
        if value is None or not math.isfinite(float(value)):
            continue  # unset gauge: no sample
        fam = metric_name(name)
        out[fam] = ("gauge", [f"{fam}{lt} {_format_value(value)}"])
    for name, summary in snapshot.get("timers", {}).items():
        fam = metric_name(name)
        lines = []
        count = int(summary.get("count", 0))
        retained = count - int(summary.get("truncated", 0))
        if retained > 0:
            for q, key in _QUANTILES:
                value = summary.get(key)
                if value is None or not math.isfinite(float(value)):
                    continue
                ql = dict(labels or {})
                ql["quantile"] = str(q)
                lines.append(
                    f"{fam}{_labels_text(ql)} {_format_value(value)}"
                )
        lines.append(f"{fam}_count{lt} {count}")
        lines.append(
            f"{fam}_sum{lt} {_format_value(summary.get('total', 0.0))}"
        )
        out[fam] = ("summary", lines)
    return out


def _render_families(
    families: dict[str, tuple[str, list[str]]]
) -> str:
    lines = []
    for fam in sorted(families):
        kind, samples = families[fam]
        lines.append(f"# TYPE {fam} {kind}")
        lines.extend(samples)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def prometheus_text(
    snapshot: Mapping,
    *,
    labels: Mapping[str, str] | None = None,
) -> str:
    """OpenMetrics text for one ``MetricsRegistry.snapshot()``."""
    return _render_families(_snapshot_families(snapshot, labels))


def prometheus_text_multi(
    snapshots: Mapping[str, Mapping],
    *,
    label: str = "artefact",
) -> str:
    """One exposition for many labelled snapshots.

    Each snapshot's series carry ``{label="<key>"}``; a family observed
    in several snapshots is declared once and lists every labelled
    series (the multi-artefact export of ``repro experiments``).
    """
    merged: dict[str, tuple[str, list[str]]] = {}
    for key in sorted(snapshots):
        families = _snapshot_families(snapshots[key], {label: key})
        for fam, (kind, samples) in families.items():
            if fam in merged:
                merged[fam][1].extend(samples)
            else:
                merged[fam] = (kind, list(samples))
    return _render_families(merged)


# ----------------------------------------------------------------------
# flat JSON
# ----------------------------------------------------------------------
def metrics_json(snapshot: Mapping) -> dict:
    """Schema-versioned flat-JSON payload of one metrics snapshot.

    Returns the ``dict`` (not a string) so callers can nest several
    snapshots into one document before serialising.
    """
    return {"schema": METRICS_SCHEMA, **snapshot}

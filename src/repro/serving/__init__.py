"""Discrete-event online-serving simulator.

The paper's introduction motivates the cost-accuracy trade with
*near-real-time* image filtering (350 M uploads/day on a social
platform), but its evaluation only covers offline batch jobs.  This
subpackage extends the reproduction to the motivating scenario: requests
arrive continuously, a batcher packs them, GPU workers serve them with
batch-size-dependent latency from the calibrated models, and the report
gives latency percentiles, deadline-miss rate, utilisation and
per-second-billed cost.

* :mod:`repro.serving.events`   — the event queue;
* :mod:`repro.serving.arrivals` — Poisson / uniform / bursty arrivals;
* :mod:`repro.serving.batcher`  — batch-forming policy;
* :mod:`repro.serving.simulator`— the event loop + report.
"""

from repro.serving.arrivals import (
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serving.batcher import BatchPolicy
from repro.serving.simulator import ServingReport, ServingSimulator

__all__ = [
    "BatchPolicy",
    "ServingReport",
    "ServingSimulator",
    "bursty_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
]

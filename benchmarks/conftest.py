"""Benchmark-suite configuration.

Each benchmark regenerates one paper artefact (table/figure) via
pytest-benchmark and asserts the headline reproduction claim on the
result, so ``pytest benchmarks/ --benchmark-only`` is simultaneously the
performance harness and the figure-regeneration pass.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def caffenet_simulator():
    from repro.calibration import (
        caffenet_accuracy_model,
        caffenet_time_model,
    )
    from repro.cloud import CloudSimulator

    return CloudSimulator(caffenet_time_model(), caffenet_accuracy_model())

"""Closed-form cross-checks for the serving simulator.

Discrete-event simulators earn trust by agreeing with the regimes where
queueing theory has answers.  For the batch-service system here
(Poisson arrivals, ``c`` workers, batch width ``B``, batch service time
``S(b)`` from the calibrated batching model) two regimes are tractable:

* **saturation**: with the queue never empty, every batch is full, so
  the system's capacity is ``c * B / S(B)`` requests/second and
  utilisation under load ``lam`` is ``lam / capacity``;
* **light load**: arrivals are so sparse that every request rides its
  own batch, so latency is just ``S(1)`` plus (for ``max_wait > 0``)
  the batching delay it opted into.

``tests/test_serving_analytic.py`` holds the DES to these limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.batching import BatchingModel
from repro.serving.batcher import BatchPolicy

__all__ = ["BatchServiceModel"]


@dataclass(frozen=True)
class BatchServiceModel:
    """Analytic view of ``c`` workers running a batching model.

    Attributes
    ----------
    batching:
        Per-device batching model (service time per batch width).
    workers:
        Number of GPU workers.
    policy:
        The batch-forming policy in force.
    """

    batching: BatchingModel
    workers: int
    policy: BatchPolicy

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")

    # ------------------------------------------------------------------
    def capacity(self) -> float:
        """Maximum sustainable arrival rate (requests/second).

        Reached when every batch is full at the policy's width: each
        worker completes ``B / S(B)`` requests per second.
        """
        b = self.policy.max_batch
        return self.workers * b / self.batching.batch_time(b)

    def utilisation(self, rate_per_s: float) -> float:
        """Long-run busy fraction at offered load ``rate_per_s``.

        Valid below capacity; above it the queue is unstable and the
        busy fraction pins at 1.
        """
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        return min(1.0, rate_per_s / self.capacity())

    def is_stable(self, rate_per_s: float) -> bool:
        """Can the fleet keep up with ``rate_per_s`` at all?"""
        return rate_per_s < self.capacity()

    # ------------------------------------------------------------------
    def light_load_latency(self) -> float:
        """Expected latency as the arrival rate approaches zero.

        A lone request waits out ``max_wait`` (no peers arrive), then
        rides a single-element batch.
        """
        return self.policy.max_wait_s + self.batching.batch_time(1)

    def full_batch_latency(self) -> float:
        """Service component of latency when batches run full."""
        return self.batching.batch_time(self.policy.max_batch)

    def effective_service_per_request(self, mean_batch: float) -> float:
        """Seconds of worker time a request consumes at a given mean
        batch width — the quantity utilisation accounting uses."""
        if mean_batch < 1:
            raise ValueError("mean_batch must be >= 1")
        return self.batching.batch_time(
            max(1, int(round(mean_batch)))
        ) / max(1.0, round(mean_batch))

"""Measurement protocol and records (paper Section 3.3).

"To minimize the measurement error, we run each experiment three times
and record the minimum time measurement" — :func:`measure_min` implements
exactly that for real (engine) measurements, and
:class:`MeasurementRecord` is the tuple the measurement phase outputs:
"a list of degrees of pruning with their inference time, cost, TAR, and
CAR".
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.metrics import car, tar
from repro.errors import MeasurementError
from repro.pruning.base import PruneSpec

__all__ = ["measure_min", "MeasurementRecord"]


def measure_min(
    fn: Callable[[], object], repeats: int = 3
) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (min seconds, last result)."""
    if repeats < 1:
        raise MeasurementError("repeats must be >= 1")
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


@dataclass(frozen=True)
class MeasurementRecord:
    """One measured application configuration (degree of pruning).

    Times are seconds, cost is dollars, accuracies are percent;
    TAR/CAR use hours and accuracy fractions per the paper's Figure 11/12
    conventions (``TAR = t / a`` with ``a`` in [0, 1]).
    """

    spec: PruneSpec
    time_s: float
    cost: float
    top1: float
    top5: float

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.cost < 0:
            raise MeasurementError("time and cost must be non-negative")

    # ------------------------------------------------------------------
    @property
    def time_hours(self) -> float:
        return self.time_s / 3600.0

    def tar(self, metric: str = "top5") -> float:
        """Time Accuracy Ratio (hours per unit accuracy)."""
        acc = self.top1 if metric == "top1" else self.top5
        return tar(self.time_hours, acc / 100.0)

    def car(self, metric: str = "top5") -> float:
        """Cost Accuracy Ratio (dollars per unit accuracy)."""
        acc = self.top1 if metric == "top1" else self.top5
        return car(self.cost, acc / 100.0)

    @property
    def label(self) -> str:
        return self.spec.label()

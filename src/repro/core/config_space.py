"""Resource-configuration space enumeration.

The paper's configuration space is the set of multisets over the catalog
("three Amazon EC2 resource types from p2 category with three resource
instances from each type", Section 4.3.2).  For ``k`` types with up to
``m`` instances each the space has ``(m+1)^k - 1`` non-empty
configurations — exponential in the catalog size, which is exactly why
the paper introduces the TAR/CAR greedy algorithm.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.cloud.catalog import InstanceType
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.errors import ConfigurationError

__all__ = ["enumerate_configurations", "configuration_space_size"]


def configuration_space_size(num_types: int, max_per_type: int) -> int:
    """Number of non-empty configurations for the given space bounds."""
    if num_types < 1 or max_per_type < 1:
        raise ConfigurationError("need >= 1 type and >= 1 instance")
    return (max_per_type + 1) ** num_types - 1


def enumerate_configurations(
    types: Sequence[InstanceType],
    max_per_type: int = 3,
    gpus_used: str = "all",
) -> list[ResourceConfiguration]:
    """All non-empty multisets with up to ``max_per_type`` of each type.

    Parameters
    ----------
    types:
        Catalog subset to draw from.
    max_per_type:
        Maximum instances of each type (the paper uses 3).
    gpus_used:
        ``"all"`` — every instance runs inference on all its GPUs (the
        paper's recommended operating point); ``"one"`` — a single GPU
        per instance (the Figure 12 comparison case).
    """
    if not types:
        raise ConfigurationError("need at least one instance type")
    if gpus_used not in ("all", "one"):
        raise ConfigurationError(f"gpus_used must be 'all' or 'one', got {gpus_used!r}")
    if len({t.name for t in types}) != len(types):
        raise ConfigurationError("duplicate instance types in space")
    configs = []
    for counts in itertools.product(
        range(max_per_type + 1), repeat=len(types)
    ):
        if not any(counts):
            continue
        instances = []
        for itype, count in zip(types, counts):
            gpus = itype.gpus if gpus_used == "all" else 1
            instances.extend(
                CloudInstance(itype, gpus_used=gpus) for _ in range(count)
            )
        configs.append(ResourceConfiguration(instances))
    assert len(configs) == configuration_space_size(
        len(types), max_per_type
    )
    return configs

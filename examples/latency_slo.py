#!/usr/bin/env python
"""Online serving under a latency SLO — pruning's gains, amplified.

The paper prices *batch* inference, where pruning's saving equals its
service-time fraction.  Online, the saving is bigger: faster batches
drain queues sooner, so the tail latency (p99) improves superlinearly
and the fleet meeting an SLO shrinks.  This example serves one minute of
bursty social-feed traffic at three operating points, on fleets sized to
a 2-second p99 SLO, and prints the annualised bill difference.

Run:  python examples/latency_slo.py      (~10 s)
"""

from repro.experiments.ext_serving_slo import run


def main() -> None:
    study = run(rate_per_s=800.0, duration_s=60.0, slo_s=2.0)
    print(
        f"traffic: bursty, {study.rate_per_s:.0f} req/s average | "
        f"p99 SLO {study.slo_s:.1f}s\n"
    )
    print(
        f"{'operating point':22}{'fleet':>8}{'p99':>8}{'$/hour':>10}"
        f"{'Top-5':>8}"
    )
    for row in study.rows:
        print(
            f"{row.name:22}{row.instances_needed:>5} x8gpu"
            f"{row.p99_s:>7.2f}s{row.hourly_cost:>10.2f}"
            f"{row.top5:>7.0f}%"
        )
    base = study.rows[0]
    best = study.rows[-1]
    yearly = (base.hourly_cost - best.hourly_cost) * 24 * 365
    print(
        f"\nserving at {best.name!r} instead of {base.name!r} saves "
        f"${base.hourly_cost - best.hourly_cost:.2f}/hour "
        f"(${yearly:,.0f}/year) for {base.top5 - best.top5:.0f} points "
        "of Top-5 accuracy"
    )
    print(
        "note the amplification: the pruned model is ~45% faster per "
        "batch, but needs 50% fewer instances — queueing turns service-"
        "time savings into larger capacity savings"
    )


if __name__ == "__main__":
    main()

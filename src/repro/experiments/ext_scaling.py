"""Extension: strong scaling of the inference workload (Amdahl on EC2).

The paper positions itself in the fixed-workload/fixed-time scaling
tradition (Section 1) but never shows a scaling curve.  This experiment
produces it for the paper's 50 k-image Caffenet set on growing
p2.xlarge fleets:

* near-linear speedup while each shard keeps its GPU saturated;
* efficiency decays once per-instance shards drop below the batching
  knee (~300 parallel inferences), so time improvements flatten while
  per-second-billed cost inflates — the fixed-workload analogue of the
  paper's "GPU saturates around 300" observation, and the reason its
  Eq. 3/Eq. 4 model prices large fleets fairly only for large
  workloads.
"""

from __future__ import annotations

from repro.calibration.caffenet import (
    caffenet_accuracy_model,
    caffenet_time_model,
)
from repro.cloud.catalog import instance_type
from repro.core.scaling import ScalingStudy, strong_scaling
from repro.experiments.report import format_table

__all__ = ["run", "render"]


def run(
    images: int = 50_000,
    instance: str = "p2.xlarge",
    counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
) -> ScalingStudy:
    return strong_scaling(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        instance_type(instance),
        images=images,
        instance_counts=counts,
    )


def render(result: ScalingStudy | None = None) -> str:
    result = result or run()
    table = format_table(
        ["Instances", "Time (h)", "Cost ($)", "Speedup", "Efficiency", "Cost inflation"],
        [
            (
                p.instances,
                f"{p.time_s / 3600:.3f}",
                f"{p.cost:.3f}",
                f"{p.speedup:.1f}x",
                f"{p.efficiency:.0%}",
                f"{p.cost_inflation:+.1%}",
            )
            for p in result.points
        ],
    )
    return (
        f"{result.images:,} Caffenet images on N x {result.itype_name}\n"
        + table
        + f"\nefficient up to {result.max_efficient_instances(0.9)} "
        "instances (>= 90% parallel efficiency)"
    )

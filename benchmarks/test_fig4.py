"""Benchmark: Figure 4 — single-inference time vs uniform prune ratio.

Paper: Caffenet 0.09 s -> 0.05 s; Googlenet 0.16 s -> 0.10 s.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig4_single_inference


def test_fig4_single_inference(benchmark):
    result = benchmark(fig4_single_inference.run)
    assert result.caffenet_s[0] == pytest.approx(0.09)
    assert result.caffenet_s[-1] == pytest.approx(0.05, rel=0.02)
    assert result.googlenet_s[0] == pytest.approx(0.16)
    assert result.googlenet_s[-1] == pytest.approx(0.10, rel=0.02)

#!/usr/bin/env python
"""End-to-end REAL pruning study on a trained CNN — no calibration.

The big-model figures in this repo use calibrated response curves
(DESIGN.md explains why).  This example validates the *mechanism* those
curves encode with a fully real pipeline on hardware we do have:

1. train a small CNN on the synthetic image dataset (real SGD);
2. L1-filter-prune conv2 at increasing ratios (Li et al. 2016);
3. measure true Top-1 accuracy and true wall-clock inference time of the
   sparse model (3 runs, minimum — the paper's measurement protocol);
4. detect the sweet-spot region with the same detector the cloud study
   uses.

Expected outcome (the paper's Observation 1, reproduced for real):
accuracy stays flat over an initial pruning range while effective FLOPs
fall; past the knee accuracy degrades.

Run:  python examples/pruning_study.py        (~1 minute on CPU)
"""

import numpy as np

from repro import L1FilterPruner, PruneSpec, build_small_cnn, find_sweet_spot
from repro.cnn.datasets import make_classification_data
from repro.cnn.training import SGDTrainer, evaluate_topk
from repro.perf.measurement import measure_min


def main() -> None:
    rng_seed = 7
    train = make_classification_data(
        n=600, num_classes=5, size=16, seed=rng_seed
    )
    test = make_classification_data(
        n=300, num_classes=5, size=16, seed=rng_seed + 1
    )

    print("training small CNN on synthetic patterns ...")
    network = build_small_cnn(seed=rng_seed, width=12)
    trainer = SGDTrainer(network, lr=0.03)
    result = trainer.fit(train, epochs=12, batch_size=32)
    base_acc = evaluate_topk(network, test, k=1)
    print(
        f"trained: loss {result.losses[0]:.2f} -> {result.losses[-1]:.3f}, "
        f"test Top-1 {base_acc:.1%}\n"
    )

    pruner = L1FilterPruner(propagate=True)
    ratios = [r / 10 for r in range(10)]
    accs, times, flops = [], [], []
    for ratio in ratios:
        pruned = pruner.apply(network, PruneSpec({"conv2": ratio}))
        seconds, acc = measure_min(
            lambda p=pruned: evaluate_topk(p, test, k=1), repeats=3
        )
        effective = pruned.total_stats(effective=True).flops
        accs.append(acc * 100)
        times.append(seconds)
        flops.append(effective / 1e6)

    print(f"{'prune':>6} {'Top-1':>8} {'eff. MFLOPs':>12} {'time (s)':>10}")
    for r, a, f, t in zip(ratios, accs, flops, times):
        print(f"{r:>5.0%} {a:>7.1f}% {f:>12.2f} {t:>10.4f}")

    region = find_sweet_spot(
        "conv2", ratios, accs, flops, tolerance=2.0
    )
    print(
        f"\nsweet spot (<=2 accuracy points drop): prune conv2 up to "
        f"{region.last_sweet_spot:.0%} -> {region.time_reduction:.0%} of "
        "effective compute removed at "
        f"{region.accuracy_drop:.1f} points accuracy cost"
    )
    drop_at_90 = accs[0] - accs[-1]
    print(
        f"past the knee the model degrades: 90% pruning costs "
        f"{drop_at_90:.1f} points — the flat-then-drop response the "
        "paper's Figure 6 shows for Caffenet, measured here for real"
    )


if __name__ == "__main__":
    main()

"""Benchmarks: raw CNN-engine primitives.

The performance of the engine itself (im2col lowering, dense and CSR
convolution, full-network forward) — the numbers a contributor watches
when touching the hot paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn.conv import ConvLayer, im2col
from repro.cnn.models import build_caffenet, build_small_cnn
from repro.pruning import L1FilterPruner, PruneSpec
from repro.pruning.sparse import SparseExecutor

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def conv2_like():
    """A Caffenet-conv2-shaped layer and input."""
    layer = ConvLayer(
        "conv2", 96, 256, kernel=5, pad=2, groups=2, rng=RNG
    )
    x = RNG.standard_normal((1, 96, 27, 27)).astype(np.float32)
    return layer, x


def test_im2col_conv1_geometry(benchmark):
    x = RNG.standard_normal((1, 3, 227, 227)).astype(np.float32)
    cols, oh, ow = benchmark(im2col, x, 11, 4, 0)
    assert (oh, ow) == (55, 55)


def test_conv_forward_conv2_geometry(benchmark, conv2_like):
    layer, x = conv2_like
    out = benchmark(layer.forward, x)
    assert out.shape == (1, 256, 27, 27)


def test_caffenet_full_forward(benchmark):
    network = build_caffenet(init="const")
    x = np.zeros((1, 3, 227, 227), dtype=np.float32)
    out = benchmark.pedantic(network.forward, args=(x,), rounds=3)
    assert out.shape == (1, 1000)


def test_small_cnn_batch_forward(benchmark):
    network = build_small_cnn(seed=0)
    x = RNG.standard_normal((64, 1, 16, 16)).astype(np.float32)
    out = benchmark(network.forward, x)
    assert out.shape == (64, 5)


def test_sparse_forward_pruned_small_cnn(benchmark):
    network = build_small_cnn(seed=0)
    pruned = L1FilterPruner().apply(
        network, PruneSpec({"conv1": 0.5, "conv2": 0.5})
    )
    executor = SparseExecutor(pruned)
    x = RNG.standard_normal((64, 1, 16, 16)).astype(np.float32)
    out = benchmark(executor.forward, x)
    assert out.shape == (64, 5)

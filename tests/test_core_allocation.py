"""Tests for config-space enumeration, sweet spots, Algorithm 1 and pipeline."""

from __future__ import annotations

import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud import (
    CloudInstance,
    CloudSimulator,
    P2_TYPES,
    instance_type,
)
from repro.core import (
    CostAccuracyPipeline,
    brute_force_allocate,
    enumerate_configurations,
    find_sweet_spot,
    greedy_allocate,
)
from repro.core.config_space import configuration_space_size
from repro.errors import ConfigurationError, InfeasibleError
from repro.pruning import PruneSpec
from repro.pruning.schedule import DegreeOfPruning, single_layer_sweep


@pytest.fixture(scope="module")
def sim():
    return CloudSimulator(caffenet_time_model(), caffenet_accuracy_model())


@pytest.fixture(scope="module")
def degrees():
    return [
        DegreeOfPruning.of(PruneSpec.unpruned()),
        DegreeOfPruning.of(PruneSpec({"conv1": 0.3, "conv2": 0.5})),
        DegreeOfPruning.of(PruneSpec.uniform(
            ["conv1", "conv2", "conv3", "conv4", "conv5"], 0.7
        )),
    ]


@pytest.fixture(scope="module")
def resources():
    return [
        CloudInstance(instance_type("p2.xlarge")),
        CloudInstance(instance_type("p2.8xlarge")),
        CloudInstance(instance_type("g3.4xlarge")),
        CloudInstance(instance_type("g3.8xlarge")),
    ]


class TestConfigSpace:
    def test_size_formula(self):
        assert configuration_space_size(3, 3) == 63
        assert configuration_space_size(1, 1) == 1

    def test_enumeration_count(self):
        configs = enumerate_configurations(P2_TYPES, max_per_type=3)
        assert len(configs) == 63

    def test_enumeration_is_unique(self):
        configs = enumerate_configurations(P2_TYPES, max_per_type=2)
        labels = {c.label() for c in configs}
        assert len(labels) == len(configs)

    def test_single_gpu_mode(self):
        configs = enumerate_configurations(
            P2_TYPES, max_per_type=1, gpus_used="one"
        )
        assert all(
            inst.gpus_used == 1 for c in configs for inst in c.instances
        )

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            enumerate_configurations([], 3)
        with pytest.raises(ConfigurationError):
            enumerate_configurations(P2_TYPES, 3, gpus_used="two")
        with pytest.raises(ConfigurationError):
            enumerate_configurations([P2_TYPES[0], P2_TYPES[0]], 1)


class TestSweetSpot:
    def test_detects_knee(self):
        ratios = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
        acc = [80, 80, 80, 80, 75, 70]
        times = [19, 18.5, 18, 17.5, 17, 16.5]
        region = find_sweet_spot("conv1", ratios, acc, times)
        assert region.last_sweet_spot == 0.3
        assert region.exists
        assert region.time_reduction == pytest.approx(1 - 17.5 / 19)

    def test_requires_contiguity(self):
        # a dip below tolerance breaks the region even if it recovers
        ratios = [0.0, 0.1, 0.2, 0.3]
        acc = [80, 70, 80, 80]
        times = [19, 18, 17, 16]
        region = find_sweet_spot("x", ratios, acc, times)
        assert region.last_sweet_spot == 0.0

    def test_no_sweet_spot_when_immediate_drop(self):
        region = find_sweet_spot(
            "x", [0.0, 0.1], [80, 60], [19, 18]
        )
        assert not region.exists

    def test_tolerance_widens_region(self):
        ratios = [0.0, 0.1, 0.2]
        acc = [80, 79.8, 79.0]
        times = [19, 18, 17]
        tight = find_sweet_spot("x", ratios, acc, times, tolerance=0.1)
        loose = find_sweet_spot("x", ratios, acc, times, tolerance=1.0)
        assert tight.last_sweet_spot < loose.last_sweet_spot

    def test_on_calibrated_caffenet_sweeps(self, sim):
        """The detector recovers the paper's published sweet spots."""
        from repro.calibration.caffenet import CAFFENET_SWEET_SPOTS
        from repro.cloud import ResourceConfiguration

        cfg = ResourceConfiguration(
            [CloudInstance(instance_type("p2.xlarge"))]
        )
        for layer, knee in CAFFENET_SWEET_SPOTS.items():
            ratios = [r / 10 for r in range(10)]
            accs, times = [], []
            for r in ratios:
                res = sim.run(PruneSpec({layer: r}), cfg, 50_000)
                accs.append(res.accuracy.top5)
                times.append(res.time_s)
            region = find_sweet_spot(layer, ratios, accs, times)
            assert region.last_sweet_spot == pytest.approx(knee, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            find_sweet_spot("x", [0.1, 0.2], [80, 80], [19, 18])
        with pytest.raises(ValueError):
            find_sweet_spot("x", [0.0], [80], [19])


class TestGreedyAllocation:
    def test_finds_feasible_solution(self, sim, degrees, resources):
        result = greedy_allocate(
            degrees,
            resources,
            sim,
            images=100_000,
            deadline_s=3600.0,
            budget=5.0,
        )
        assert result.result.within(3600.0, 5.0)

    def test_prefers_highest_accuracy(self, sim, degrees, resources):
        # generous constraints: the unpruned degree must win
        result = greedy_allocate(
            degrees,
            resources,
            sim,
            images=50_000,
            deadline_s=10 * 3600.0,
            budget=100.0,
        )
        assert result.accuracy_top5 == pytest.approx(80.0)

    def test_tight_constraints_force_pruning(self, sim, degrees, resources):
        loose = greedy_allocate(
            degrees, resources, sim, 200_000, 10 * 3600.0, 100.0
        )
        tight = greedy_allocate(
            degrees, resources, sim, 200_000, 900.0, 100.0
        )
        assert tight.accuracy_top5 <= loose.accuracy_top5
        assert tight.result.time_s <= 900.0

    def test_infeasible_raises(self, sim, degrees, resources):
        with pytest.raises(InfeasibleError):
            greedy_allocate(
                degrees, resources, sim, 10_000_000, 60.0, 0.01
            )

    def test_empty_inputs_raise(self, sim, degrees):
        with pytest.raises(InfeasibleError):
            greedy_allocate([], [], sim, 1000, 60.0, 1.0)

    def test_polynomial_evaluation_count(self, sim, degrees, resources):
        result = greedy_allocate(
            degrees, resources, sim, 50_000, 10 * 3600.0, 100.0
        )
        # greedy: |P| sorts + per-degree |G| CAR rankings + prefix sims;
        # far below the 2^|G| x |P| brute-force count
        assert result.evaluations <= len(degrees) * (
            2 * len(resources) + 1
        ) + len(degrees)


class TestBruteForceAllocation:
    def test_agrees_with_greedy_on_accuracy(self, sim, degrees, resources):
        greedy = greedy_allocate(
            degrees, resources, sim, 100_000, 2 * 3600.0, 10.0
        )
        brute = brute_force_allocate(
            degrees, resources, sim, 100_000, 2 * 3600.0, 10.0
        )
        # Algorithm 1's heuristic must reach the same best accuracy
        assert greedy.accuracy_top5 == pytest.approx(
            brute.accuracy_top5, abs=1e-9
        )
        # brute force may find a cheaper configuration, never a better accuracy
        assert brute.result.cost <= greedy.result.cost + 1e-9

    def test_exponential_evaluation_count(self, sim, degrees, resources):
        brute = brute_force_allocate(
            degrees, resources, sim, 50_000, 10 * 3600.0, 100.0
        )
        assert brute.evaluations == len(degrees) * (
            2 ** len(resources) - 1
        )

    def test_infeasible_raises(self, sim, degrees, resources):
        with pytest.raises(InfeasibleError):
            brute_force_allocate(
                degrees, resources, sim, 10_000_000, 60.0, 0.01
            )


class TestPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return CostAccuracyPipeline(
            caffenet_time_model(), caffenet_accuracy_model()
        )

    def test_characterize(self, pipeline):
        from repro.calibration.caffenet import CAFFENET_TIME_SHARES

        ch = pipeline.characterize(CAFFENET_TIME_SHARES)
        assert ch.single_inference_s == pytest.approx(0.09)
        assert ch.single_inference_pruned_s < ch.single_inference_s
        assert 200 <= ch.saturation_batch <= 400

    def test_measure_stage(self, pipeline):
        records = pipeline.measure(single_layer_sweep("conv2"), 50_000)
        assert len(records) == 10
        assert records[0].time_s / 60 == pytest.approx(19.0, rel=1e-6)
        times = [r.time_s for r in records]
        assert times == sorted(times, reverse=True)

    def test_explore_and_pareto(self, pipeline):
        configs = enumerate_configurations(P2_TYPES, max_per_type=1)
        degrees = single_layer_sweep("conv2", [0.0, 0.5, 0.9])
        points = pipeline.explore(
            degrees, configs, 50_000, deadline_s=3600.0, budget=10.0
        )
        assert len(points) == len(degrees) * len(configs)
        front = pipeline.pareto(points, objective="cost", metric="top5")
        assert front
        accs = [p.accuracy for p in front]
        assert accs == sorted(accs, reverse=True)

    def test_pareto_rejects_bad_objective(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.pareto([], objective="energy")

"""Extension: fine-tuning recovery — why sweet spots are wide.

The paper uses Li et al.'s pruning *tool*, which retrains after pruning;
its measured sweet spots (flat accuracy until 30-50% pruning) are
properties of fine-tuned models.  This experiment shows the effect for
real on a trained small CNN: pruning alone dents accuracy well before
the fine-tuned model does, and sparsity-preserving retraining buys the
accuracy back — widening the sweet-spot region, which is what makes the
paper's cost savings reachable at zero accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnn.datasets import make_classification_data
from repro.cnn.models import build_small_cnn
from repro.cnn.training import SGDTrainer
from repro.experiments.report import format_table
from repro.pruning.finetune import RecoveryPoint, recovery_sweep

__all__ = ["FinetuneRecovery", "run", "render"]


@dataclass(frozen=True)
class FinetuneRecovery:
    layer: str
    points: tuple[RecoveryPoint, ...]

    @property
    def max_recovery(self) -> float:
        return max(p.recovered for p in self.points)

    def point(self, ratio: float) -> RecoveryPoint:
        for p in self.points:
            if abs(p.ratio - ratio) < 1e-9:
                return p
        raise KeyError(ratio)


def run(
    layer: str = "conv2",
    train_n: int = 400,
    test_n: int = 200,
    train_epochs: int = 10,
    finetune_epochs: int = 4,
    seed: int = 21,
) -> FinetuneRecovery:
    train = make_classification_data(n=train_n, num_classes=5, seed=seed)
    test = make_classification_data(
        n=test_n, num_classes=5, seed=seed + 1
    )
    network = build_small_cnn(seed=seed, width=12)
    SGDTrainer(network, lr=0.03).fit(
        train, epochs=train_epochs, batch_size=32
    )
    points = recovery_sweep(
        network,
        layer,
        train,
        test,
        ratios=(0.0, 0.25, 0.5, 0.75),
        epochs=finetune_epochs,
    )
    return FinetuneRecovery(layer=layer, points=tuple(points))


def render(result: FinetuneRecovery | None = None) -> str:
    result = result or run()
    table = format_table(
        ["Prune ratio", "pruned only (%)", "fine-tuned (%)", "recovered"],
        [
            (
                f"{p.ratio:.0%}",
                f"{p.accuracy_pruned:.1f}",
                f"{p.accuracy_finetuned:.1f}",
                f"+{p.recovered:.1f}",
            )
            for p in result.points
        ],
    )
    return (
        f"layer: {result.layer}\n"
        + table
        + f"\nmax recovery: {result.max_recovery:.1f} points — retraining"
        " widens the sweet spot, which is the regime the paper's"
        " measurements (via Li et al.'s tool) operate in"
    )

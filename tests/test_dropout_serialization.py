"""Tests for dropout and weight serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn import build_caffenet, build_small_cnn
from repro.cnn.activations import ReLU
from repro.cnn.datasets import make_classification_data
from repro.cnn.dropout import Dropout
from repro.cnn.dense import DenseLayer
from repro.cnn.network import Network
from repro.cnn.serialization import (
    load_state_dict,
    load_weights,
    save_weights,
    state_dict,
)
from repro.cnn.training import SGDTrainer
from repro.errors import ShapeError


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout("d", rate=0.5)
        x = rng.standard_normal((4, 10)).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x), x)
        assert layer.last_mask is None

    def test_training_mode_zeroes_roughly_rate(self, rng):
        layer = Dropout("d", rate=0.5, seed=1)
        layer.training = True
        x = np.ones((100, 100), dtype=np.float32)
        out = layer.forward(x)
        zero_frac = (out == 0).mean()
        assert zero_frac == pytest.approx(0.5, abs=0.05)

    def test_inverted_scaling_preserves_expectation(self, rng):
        layer = Dropout("d", rate=0.5, seed=2)
        layer.training = True
        x = np.ones((200, 200), dtype=np.float32)
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_rate_is_identity_even_training(self, rng):
        layer = Dropout("d", rate=0.0)
        layer.training = True
        x = rng.standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout("d", rate=1.0)
        with pytest.raises(ValueError):
            Dropout("d", rate=-0.1)

    def test_caffenet_carries_dropout(self, caffenet_const):
        assert isinstance(caffenet_const.layer("drop6"), Dropout)
        assert isinstance(caffenet_const.layer("drop7"), Dropout)

    def test_caffenet_inference_unaffected_by_dropout(self, caffenet_const):
        # dropout layers at inference are identity: prob sums to one
        x = np.zeros((1, 3, 227, 227), dtype=np.float32)
        out = caffenet_const.forward(x)
        assert out.sum() == pytest.approx(1.0, rel=1e-4)

    def test_trainer_toggles_training_mode(self):
        net = Network(
            "d",
            (8,),
            [
                DenseLayer("fc", 8, 8),
                ReLU("r"),
                Dropout("drop", rate=0.5, seed=3),
                DenseLayer("out", 8, 3),
            ],
        )
        data = make_classification_data(
            n=32, num_classes=3, size=1, channels=8, seed=0
        )
        flat = data.x.reshape(32, 8)
        from repro.cnn.datasets import SyntheticImages

        data2 = SyntheticImages(x=flat, y=data.y)
        trainer = SGDTrainer(net, lr=0.01)
        trainer.fit(data2, epochs=1, batch_size=8)
        drop = net.layer("drop")
        assert drop.training is False
        assert drop.last_mask is None

    def test_training_with_dropout_still_learns(self):
        from repro.cnn.conv import ConvLayer
        from repro.cnn.dense import Flatten
        from repro.cnn.pooling import MaxPool

        net = Network(
            "sd",
            (1, 16, 16),
            [
                ConvLayer("conv1", 1, 8, 3, pad=1,
                          rng=np.random.default_rng(0)),
                ReLU("r1"),
                MaxPool("p1", 2, 2),
                Flatten("f"),
                Dropout("drop", rate=0.3, seed=1),
                DenseLayer("fc", 8 * 8 * 8, 5,
                           rng=np.random.default_rng(1)),
            ],
        )
        data = make_classification_data(n=150, num_classes=5, seed=9)
        result = SGDTrainer(net, lr=0.03).fit(
            data, epochs=8, batch_size=25
        )
        assert result.final_accuracy > 0.4  # above 0.2 chance


class TestSerialization:
    def test_roundtrip(self, small_cnn, tmp_path, rng):
        path = tmp_path / "model.npz"
        save_weights(small_cnn, path)
        clone = build_small_cnn(seed=99)  # different weights
        x = rng.standard_normal((2, 1, 16, 16)).astype(np.float32)
        assert not np.allclose(clone.forward(x), small_cnn.forward(x))
        load_weights(clone, path)
        np.testing.assert_allclose(
            clone.forward(x), small_cnn.forward(x), rtol=1e-6
        )

    def test_state_dict_keys(self, small_cnn):
        keys = set(state_dict(small_cnn))
        assert "conv1.weights" in keys and "fc2.bias" in keys

    def test_missing_array_rejected(self, small_cnn):
        state = state_dict(small_cnn)
        state.pop("conv1.weights")
        with pytest.raises(ShapeError, match="missing"):
            load_state_dict(small_cnn, state)

    def test_unknown_array_rejected(self, small_cnn):
        state = dict(state_dict(small_cnn))
        state["ghost.weights"] = np.zeros(3)
        with pytest.raises(ShapeError, match="unknown"):
            load_state_dict(small_cnn, state)

    def test_shape_mismatch_rejected(self, small_cnn):
        state = dict(state_dict(small_cnn))
        state["conv1.weights"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ShapeError, match="shape"):
            load_state_dict(small_cnn, state)

    def test_pruned_model_roundtrip(self, small_cnn, tmp_path):
        from repro.pruning import L1FilterPruner, PruneSpec

        pruned = L1FilterPruner().apply(
            small_cnn, PruneSpec({"conv1": 0.5})
        )
        path = tmp_path / "pruned.npz"
        save_weights(pruned, path)
        clone = build_small_cnn(seed=3)
        load_weights(clone, path)
        assert clone.layer("conv1").density() == pytest.approx(
            pruned.layer("conv1").density()
        )

"""Benchmark: extension — tuning-technique comparison on a real CNN.

Quantifies the paper's §2.1 argument: only pruning reduces effective
FLOPs (what cloud billing scales with); quantization and weight sharing
compress memory at (mostly) intact accuracy.
"""

from __future__ import annotations

import pytest

from repro.experiments import ext_technique_comparison


def test_ext_technique_comparison(benchmark):
    result = benchmark.pedantic(
        ext_technique_comparison.run,
        kwargs=dict(train_n=300, test_n=150, epochs=8),
        rounds=1,
        iterations=1,
    )
    base = result.baseline
    assert base.top1 > 60.0
    pruned = result.row("L1 filter prune 50%")
    assert pruned.effective_mflops < base.effective_mflops * 0.9
    assert result.row("quant@4bit").model_kb < base.model_kb / 5
    assert result.row("quant@4bit").effective_mflops == pytest.approx(
        base.effective_mflops
    )

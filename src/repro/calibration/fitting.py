"""Fit calibrated models from measured sweeps.

The shipped Caffenet/Googlenet calibrations encode anchors read from the
paper.  A user with *their own* application measures single-layer sweeps
(the paper's Section 3.3 protocol) and needs the same model objects; the
fitters here close that loop:

* :func:`fit_time_curves` — per-layer remaining-time-fraction curves
  from measured (ratio, time) sweeps;
* :func:`fit_synergy_gamma` — the multi-layer synergy exponent from one
  measured multi-layer combination;
* :func:`fit_accuracy_model` — per-layer drop curves, sweet-spot knees
  and the interaction strength eta from measured accuracy sweeps plus
  (optionally) one multi-layer anchor;
* :func:`fit_time_model` — assemble a full
  :class:`~repro.perf.latency.CalibratedTimeModel` from the above.

``experiments/ext_real_pipeline.py`` uses these on genuinely measured
small-CNN sweeps, running the paper's whole methodology with no
paper-derived constants at all.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.calibration.accuracy_model import AccuracyModel, AccuracyPair
from repro.calibration.curves import PiecewiseCurve
from repro.errors import CalibrationError
from repro.perf.latency import CalibratedTimeModel

__all__ = [
    "fit_time_curves",
    "fit_synergy_gamma",
    "fit_accuracy_model",
    "fit_time_model",
]

#: a measured sweep: (ratios, values) with ratios starting at 0.
Sweep = tuple[Sequence[float], Sequence[float]]


def _validate_sweep(layer: str, ratios, values) -> tuple[np.ndarray, np.ndarray]:
    r = np.asarray(ratios, dtype=float)
    v = np.asarray(values, dtype=float)
    if r.shape != v.shape or r.ndim != 1 or r.size < 2:
        raise CalibrationError(
            f"{layer}: sweep needs equal-length 1-D ratios/values"
        )
    if r[0] != 0.0 or np.any(np.diff(r) <= 0):
        raise CalibrationError(
            f"{layer}: ratios must start at 0 and increase"
        )
    return r, v


def fit_time_curves(
    time_sweeps: Mapping[str, Sweep]
) -> dict[str, PiecewiseCurve]:
    """Per-layer remaining-time-fraction curves from measured sweeps.

    Each sweep's times are normalised by its own ratio-0 measurement;
    non-monotone jitter (measurement noise) is smoothed by a running
    minimum, since pruning more can never make the true time longer.
    """
    curves = {}
    for layer, (ratios, times) in time_sweeps.items():
        r, t = _validate_sweep(layer, ratios, times)
        if t[0] <= 0:
            raise CalibrationError(f"{layer}: baseline time must be positive")
        fraction = np.minimum.accumulate(t / t[0])
        curves[layer] = PiecewiseCurve(list(zip(r.tolist(), fraction.tolist())))
    return curves


def fit_synergy_gamma(
    time_curves: Mapping[str, PiecewiseCurve],
    combo_ratios: Mapping[str, float],
    measured_fraction: float,
) -> float:
    """Fit gamma from one measured multi-layer combination.

    Solves ``(prod_l f_l(p_l))^gamma = measured_fraction``; gamma = 1
    when the product already explains the measurement or when the combo
    touches fewer than two calibrated layers.
    """
    if not 0 < measured_fraction <= 1:
        raise CalibrationError("measured_fraction must be in (0, 1]")
    product = 1.0
    layers = 0
    for layer, ratio in combo_ratios.items():
        curve = time_curves.get(layer)
        if curve is None:
            continue
        product *= float(curve(ratio))
        layers += 1
    if layers < 2 or product >= 1.0 or measured_fraction >= 1.0:
        return 1.0
    gamma = math.log(measured_fraction) / math.log(product)
    return max(1.0, gamma)


def _knee_of(r: np.ndarray, acc: np.ndarray, tolerance: float) -> float:
    """Largest contiguous-from-zero ratio within tolerance of baseline."""
    ok = acc >= acc[0] - tolerance
    qualifying = np.where(np.cumprod(ok))[0]
    return float(r[int(qualifying[-1])])


def fit_accuracy_model(
    name: str,
    baseline: AccuracyPair,
    top1_sweeps: Mapping[str, Sweep],
    top5_sweeps: Mapping[str, Sweep],
    combo_ratios: Mapping[str, float] | None = None,
    combo_top5: float | None = None,
    tolerance: float = 1.0,
) -> AccuracyModel:
    """Fit an :class:`AccuracyModel` from measured accuracy sweeps.

    Parameters
    ----------
    top1_sweeps, top5_sweeps:
        Per-layer measured (ratio, accuracy-percent) sweeps.
    combo_ratios, combo_top5:
        Optionally, one measured multi-layer combination to fit the
        interaction strength ``eta`` (defaults to 0 — no interaction —
        when absent).
    tolerance:
        Accuracy-points tolerance for knee detection.
    """
    if set(top1_sweeps) != set(top5_sweeps):
        raise CalibrationError("top1/top5 sweeps must cover the same layers")
    drop1: dict[str, PiecewiseCurve] = {}
    drop5: dict[str, PiecewiseCurve] = {}
    knees: dict[str, float] = {}
    for layer in top5_sweeps:
        r5, a5 = _validate_sweep(layer, *top5_sweeps[layer])
        r1, a1 = _validate_sweep(layer, *top1_sweeps[layer])
        # drops are non-negative and monotone (noise smoothed)
        d5 = np.maximum.accumulate(np.maximum(a5[0] - a5, 0.0))
        d1 = np.maximum.accumulate(np.maximum(a1[0] - a1, 0.0))
        drop5[layer] = PiecewiseCurve(list(zip(r5.tolist(), d5.tolist())))
        drop1[layer] = PiecewiseCurve(list(zip(r1.tolist(), d1.tolist())))
        knee = _knee_of(r5, a5, tolerance)
        knees[layer] = knee if knee > 0 else float(r5[1]) / 2
    eta5 = 0.0
    if combo_ratios is not None and combo_top5 is not None:
        # predicted drop without interaction
        plain = sum(
            float(drop5[l](p)) for l, p in combo_ratios.items() if l in drop5
        )
        residual = max(0.0, (baseline.top5 - combo_top5) - plain)
        q2 = np.array(
            [
                (p / knees.get(l, 0.5)) ** 2
                for l, p in combo_ratios.items()
            ]
        )
        excess = q2.sum() - q2.max()
        eta5 = residual / math.sqrt(excess) if excess > 0 else 0.0
    eta1 = eta5 * (baseline.top1 / baseline.top5 if baseline.top5 else 1.0)
    return AccuracyModel(
        name=name,
        baseline=baseline,
        drop_curves_top1=drop1,
        drop_curves_top5=drop5,
        sweet_spots=knees,
        eta_top1=eta1,
        eta_top5=eta5,
    )


def fit_time_model(
    name: str,
    t_saturated: float,
    single_inference_s: float,
    time_sweeps: Mapping[str, Sweep],
    combo_ratios: Mapping[str, float] | None = None,
    combo_fraction: float | None = None,
    floor_fraction: float = 0.3,
    **kwargs,
) -> CalibratedTimeModel:
    """Assemble a :class:`CalibratedTimeModel` from measured sweeps."""
    if t_saturated <= 0 or single_inference_s <= 0:
        raise CalibrationError("time anchors must be positive")
    curves = fit_time_curves(time_sweeps)
    gamma = 1.0
    if combo_ratios is not None and combo_fraction is not None:
        gamma = fit_synergy_gamma(curves, combo_ratios, combo_fraction)
    return CalibratedTimeModel(
        name=name,
        t_saturated_k80=t_saturated,
        single_inference_s=single_inference_s,
        time_curves=curves,
        synergy_gamma=gamma,
        floor_fraction=floor_fraction,
        **kwargs,
    )

"""Tests for the FLOP/traffic helper functions."""

from __future__ import annotations

import pytest

from repro.cnn.flops import (
    conv_flop_fraction,
    flop_breakdown,
    param_breakdown,
    sparsity_summary,
    traffic_breakdown,
)
from repro.pruning import L1FilterPruner, MagnitudePruner, PruneSpec


class TestBreakdowns:
    def test_known_caffenet_flops(self, caffenet_const):
        flops = flop_breakdown(caffenet_const)
        # exact analytic values for the canonical geometry
        assert flops["conv1"] == 2 * 55 * 55 * 96 * 11 * 11 * 3
        assert flops["fc3"] == 2 * 4096 * 1000
        # conv2 out-flops conv1 (the roofline ablation's premise)
        assert flops["conv2"] > flops["conv1"]

    def test_effective_breakdown_tracks_pruning(self, small_cnn):
        dense = flop_breakdown(small_cnn)
        L1FilterPruner(propagate=False).apply(
            small_cnn, PruneSpec({"conv2": 0.5}), inplace=True
        )
        effective = flop_breakdown(small_cnn, effective=True)
        assert effective["conv2"] == pytest.approx(
            dense["conv2"] / 2, rel=0.01
        )
        assert effective["conv1"] == dense["conv1"]

    def test_traffic_includes_weights(self, caffenet_const):
        traffic = traffic_breakdown(caffenet_const)
        params = param_breakdown(caffenet_const)
        # fc1's traffic is dominated by its 37.7M weights
        assert traffic["fc1"] > params["fc1"] * 4 * 0.9

    def test_conv_flop_fraction_caffenet(self, caffenet_const):
        frac = conv_flop_fraction(caffenet_const)
        assert 0.85 < frac < 1.0

    def test_conv_flop_fraction_googlenet_higher(
        self, caffenet_const, googlenet_const
    ):
        # Googlenet has a single tiny classifier: convs dominate more
        assert conv_flop_fraction(googlenet_const) > conv_flop_fraction(
            caffenet_const
        )

    def test_sparsity_summary(self, small_cnn):
        MagnitudePruner().apply(
            small_cnn, PruneSpec({"fc1": 0.75}), inplace=True
        )
        summary = sparsity_summary(small_cnn)
        assert summary["fc1"] == pytest.approx(0.25, abs=0.01)
        assert summary["conv1"] == 1.0

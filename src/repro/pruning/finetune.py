"""Prune-then-retrain: the full Li et al. 2016 recipe.

The pruning tool the paper uses [17] does not just zero filters — it
*retrains* the pruned network so the surviving weights compensate.  The
paper's measured sweet spots therefore reflect fine-tuned models.  This
module closes that loop for the really-executable small networks:
:func:`prune_and_finetune` applies a pruner and then runs
sparsity-preserving SGD (pruned weights are clamped at zero every step),
and :func:`recovery_sweep` measures how much accuracy fine-tuning buys
back at each prune ratio — the mechanism that *creates* wide sweet
spots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnn.datasets import SyntheticImages
from repro.cnn.network import Network
from repro.cnn.training import SGDTrainer, evaluate_topk
from repro.pruning.base import PruneSpec, Pruner
from repro.pruning.l1_filter import L1FilterPruner

__all__ = ["prune_and_finetune", "recovery_sweep", "RecoveryPoint"]


def prune_and_finetune(
    network: Network,
    spec: PruneSpec,
    train: SyntheticImages,
    pruner: Pruner | None = None,
    epochs: int = 3,
    lr: float = 0.01,
    batch_size: int = 32,
) -> Network:
    """Prune ``network`` per ``spec`` and retrain the survivors.

    Returns a new network; the original is untouched.  The fine-tuning
    pass cannot resurrect pruned weights (their zero pattern is
    preserved), exactly like the sparse retraining of Li et al.
    """
    pruner = pruner or L1FilterPruner(propagate=True)
    pruned = pruner.apply(network, spec)
    if epochs > 0:
        trainer = SGDTrainer(pruned, lr=lr, preserve_zeros=True)
        trainer.fit(train, epochs=epochs, batch_size=batch_size)
    return pruned


@dataclass(frozen=True)
class RecoveryPoint:
    """Accuracy with and without fine-tuning at one prune ratio."""

    ratio: float
    accuracy_pruned: float
    accuracy_finetuned: float

    @property
    def recovered(self) -> float:
        """Percentage points of accuracy bought back by retraining."""
        return self.accuracy_finetuned - self.accuracy_pruned


def recovery_sweep(
    network: Network,
    layer: str,
    train: SyntheticImages,
    test: SyntheticImages,
    ratios: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75),
    epochs: int = 3,
    lr: float = 0.01,
) -> list[RecoveryPoint]:
    """Measure fine-tuning's accuracy recovery across prune ratios."""
    pruner = L1FilterPruner(propagate=True)
    points = []
    for ratio in ratios:
        spec = PruneSpec({layer: ratio})
        pruned = pruner.apply(network, spec)
        acc_pruned = evaluate_topk(pruned, test, k=1) * 100.0
        tuned = prune_and_finetune(
            network, spec, train, pruner=pruner, epochs=epochs, lr=lr
        )
        acc_tuned = evaluate_topk(tuned, test, k=1) * 100.0
        points.append(
            RecoveryPoint(
                ratio=ratio,
                accuracy_pruned=acc_pruned,
                accuracy_finetuned=acc_tuned,
            )
        )
    return points

"""Tests for prune-then-retrain (the full Li et al. recipe)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn import build_small_cnn
from repro.cnn.datasets import make_classification_data
from repro.cnn.training import SGDTrainer, evaluate_topk
from repro.pruning import L1FilterPruner, PruneSpec
from repro.pruning.finetune import prune_and_finetune, recovery_sweep


@pytest.fixture(scope="module")
def trained():
    network = build_small_cnn(seed=13, width=10)
    train = make_classification_data(n=300, num_classes=5, seed=13)
    SGDTrainer(network, lr=0.03).fit(train, epochs=8, batch_size=30)
    return network, train


class TestPreserveZeros:
    def test_pruned_weights_stay_zero_through_training(self, trained):
        network, train = trained
        pruned = L1FilterPruner(propagate=False).apply(
            network, PruneSpec({"conv2": 0.5})
        )
        mask = pruned.layer("conv2").weights == 0
        trainer = SGDTrainer(pruned, lr=0.02, preserve_zeros=True)
        trainer.fit(train, epochs=2, batch_size=30)
        assert (pruned.layer("conv2").weights[mask] == 0).all()

    def test_surviving_weights_move(self, trained):
        network, train = trained
        pruned = L1FilterPruner(propagate=False).apply(
            network, PruneSpec({"conv2": 0.5})
        )
        before = pruned.layer("conv2").weights.copy()
        SGDTrainer(pruned, lr=0.02, preserve_zeros=True).fit(
            train, epochs=2, batch_size=30
        )
        survivors = before != 0
        assert not np.allclose(
            pruned.layer("conv2").weights[survivors], before[survivors]
        )

    def test_without_flag_zeros_can_regrow(self, trained):
        """Element-pruned dense weights receive gradient and regrow when
        the zero pattern is not preserved.  (Whole *filters* would not:
        their ReLU output is exactly zero, gating the gradient.)"""
        from repro.pruning import MagnitudePruner

        network, train = trained
        pruned = MagnitudePruner().apply(
            network, PruneSpec({"fc1": 0.5})
        )
        mask = pruned.layer("fc1").weights == 0
        SGDTrainer(pruned, lr=0.02, preserve_zeros=False).fit(
            train, epochs=2, batch_size=30
        )
        assert (pruned.layer("fc1").weights[mask] != 0).any()


class TestPruneAndFinetune:
    def test_original_untouched(self, trained):
        network, train = trained
        before = network.layer("conv2").weights.copy()
        prune_and_finetune(
            network, PruneSpec({"conv2": 0.5}), train, epochs=1
        )
        np.testing.assert_array_equal(
            network.layer("conv2").weights, before
        )

    def test_returns_sparse_network(self, trained):
        network, train = trained
        tuned = prune_and_finetune(
            network, PruneSpec({"conv2": 0.5}), train, epochs=1
        )
        assert tuned.layer("conv2").density() < 0.7

    def test_finetuning_recovers_accuracy(self, trained):
        """The Li et al. effect: retraining buys accuracy back at
        aggressive prune ratios."""
        network, train = trained
        test = make_classification_data(n=200, num_classes=5, seed=14)
        spec = PruneSpec({"conv2": 0.75})
        pruner = L1FilterPruner(propagate=True)
        pruned_only = pruner.apply(network, spec)
        acc_pruned = evaluate_topk(pruned_only, test, k=1)
        tuned = prune_and_finetune(
            network, spec, train, pruner=pruner, epochs=4
        )
        acc_tuned = evaluate_topk(tuned, test, k=1)
        assert acc_tuned >= acc_pruned

    def test_zero_epochs_is_plain_pruning(self, trained):
        network, train = trained
        spec = PruneSpec({"conv2": 0.5})
        tuned = prune_and_finetune(network, spec, train, epochs=0)
        plain = L1FilterPruner(propagate=True).apply(network, spec)
        np.testing.assert_array_equal(
            tuned.layer("conv2").weights, plain.layer("conv2").weights
        )


class TestRecoverySweep:
    def test_sweep_structure(self, trained):
        network, train = trained
        test = make_classification_data(n=100, num_classes=5, seed=15)
        points = recovery_sweep(
            network,
            "conv2",
            train,
            test,
            ratios=(0.0, 0.5),
            epochs=1,
        )
        assert [p.ratio for p in points] == [0.0, 0.5]
        for p in points:
            assert 0.0 <= p.accuracy_pruned <= 100.0
            assert 0.0 <= p.accuracy_finetuned <= 100.0

    def test_recovery_nonnegative_at_zero_ratio(self, trained):
        network, train = trained
        test = make_classification_data(n=100, num_classes=5, seed=16)
        (point,) = recovery_sweep(
            network, "conv2", train, test, ratios=(0.0,), epochs=1
        )
        # unpruned "fine-tuning" is just extra training: cannot be
        # catastrophically worse than the trained baseline
        assert point.accuracy_finetuned >= point.accuracy_pruned - 10.0

"""Weight quantization — the paper's first alternative accuracy knob.

Section 2.1: "Quantization [7, 32] is used to change the length of
variables that hold CNN parameters ... This has a direct impact on the
memory usage of the application.  Quantization improves the execution
time if there is hardware support for higher speed computations with
shorter bit representation."

:class:`QuantizationTuner` applies uniform affine (range-symmetric)
quantization per layer: weights are snapped to ``2^bits`` evenly spaced
levels spanning the layer's weight range, then *dequantized* back to
float32 so the engine can execute them (fake quantization, the standard
evaluation technique).  Following the paper, the memory footprint
shrinks with the bit width while execution time is unchanged — our
simulated K80/M60 have no low-precision fast path, exactly the situation
the paper describes.

The extension experiment (``experiments/ext_technique_comparison``)
compares this against pruning and weight sharing on a really-trained
network.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.cnn.layers import DTYPE, WeightedLayer
from repro.cnn.network import Network
from repro.errors import PruningError

__all__ = ["QuantizationTuner", "quantize_array", "quantized_model_bytes"]


def quantize_array(weights: np.ndarray, bits: int) -> np.ndarray:
    """Fake-quantize to ``2^bits`` uniform levels over the value range.

    Returns a float32 array whose values lie on the quantization grid;
    an all-equal input is returned unchanged (its range is empty).
    """
    if not 1 <= bits <= 32:
        raise PruningError(f"bits must be in [1, 32], got {bits}")
    lo = float(weights.min())
    hi = float(weights.max())
    if hi <= lo:
        return weights.astype(DTYPE, copy=True)
    levels = (1 << bits) - 1
    scale = (hi - lo) / levels
    q = np.round((weights - lo) / scale)
    return (q * scale + lo).astype(DTYPE)


def quantized_model_bytes(network: Network, bits: int) -> int:
    """Model size in bytes at ``bits`` per weight (plus float32 biases
    and one per-layer (lo, scale) pair for dequantization)."""
    total = 0
    for layer in network.weighted_layers():
        total += (layer.weights.size * bits + 7) // 8
        total += layer.bias.size * 4
        total += 8  # lo + scale as float32
    return total


@dataclass(frozen=True)
class QuantizationTuner:
    """Quantize every weighted layer to ``bits``-bit weights.

    Unlike pruning there is no per-layer ratio; the bit width is the
    single knob (the paper's example: 64-bit parameters re-represented
    in 32 bits).
    """

    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise PruningError(f"bits must be in [1, 32], got {self.bits}")

    def apply(self, network: Network, inplace: bool = False) -> Network:
        """Produce the quantized version of ``network``."""
        target = network if inplace else copy.deepcopy(network)
        for layer in target.weighted_layers():
            layer.weights[...] = quantize_array(layer.weights, self.bits)
        return target

    def model_bytes(self, network: Network) -> int:
        """Stored model size after quantization."""
        return quantized_model_bytes(network, self.bits)

    def compression_ratio(self, network: Network) -> float:
        """float32 size / quantized size."""
        dense = sum(
            (layer.weights.size + layer.bias.size) * 4
            for layer in network.weighted_layers()
        )
        return dense / self.model_bytes(network)

    def label(self) -> str:
        return f"quant@{self.bits}bit"

"""The unified evaluation space: spec, cache, columns and queries.

Covers the contracts every migrated consumer leans on:

* :class:`SpaceSpec` normalisation (degrees or raw specs) + validation;
* the process-wide content-keyed cache (hits across independently
  constructed model instances, metrics counters, eviction, clearing);
* columnar results agree exactly with per-point ``CloudSimulator.run``,
  including the ``proportional_split=True`` path;
* vectorised feasible/Pareto/argmin queries match the historical
  per-row code (``pareto_front``) on the same rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import caffenet_accuracy_model, caffenet_time_model
from repro.cloud.catalog import instance_type
from repro.cloud.configuration import ResourceConfiguration
from repro.cloud.instance import CloudInstance
from repro.cloud.simulator import CloudSimulator
from repro.core.evalspace import (
    SpaceSpec,
    clear_space_cache,
    evaluate,
    space_cache_info,
)
from repro.core.pareto import pareto_front
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, scoped_observability
from repro.pruning.base import PruneSpec
from repro.pruning.schedule import DegreeOfPruning

IMAGES = 50_000

SPECS = [
    PruneSpec.unpruned(),
    PruneSpec({"conv1": 0.3}),
    PruneSpec({"conv2": 0.5}),
    PruneSpec({"conv1": 0.3, "conv2": 0.5}),
]


def _configs():
    p2 = instance_type("p2.xlarge")
    p2_8 = instance_type("p2.8xlarge")
    g3 = instance_type("g3.8xlarge")
    return [
        ResourceConfiguration([CloudInstance(p2)]),
        ResourceConfiguration([CloudInstance(p2_8)]),
        ResourceConfiguration([CloudInstance(p2_8), CloudInstance(g3)]),
    ]


def _space_spec(**kwargs):
    return SpaceSpec.build(
        caffenet_time_model(),
        caffenet_accuracy_model(),
        SPECS,
        _configs(),
        IMAGES,
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_space_cache()
    yield
    clear_space_cache()


class TestSpaceSpec:
    def test_build_normalises_degrees_and_specs(self):
        mixed = [DegreeOfPruning.of(SPECS[1]), SPECS[2]]
        spec = SpaceSpec.build(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            mixed,
            _configs(),
            IMAGES,
        )
        assert spec.specs == (SPECS[1], SPECS[2])
        assert all(isinstance(s, PruneSpec) for s in spec.specs)
        assert (spec.n_specs, spec.n_configurations) == (2, 3)
        assert spec.n_points == 6

    def test_rejects_degenerate_grids(self):
        tm, am = caffenet_time_model(), caffenet_accuracy_model()
        with pytest.raises(ConfigurationError):
            SpaceSpec.build(tm, am, [], _configs(), IMAGES)
        with pytest.raises(ConfigurationError):
            SpaceSpec.build(tm, am, SPECS, [], IMAGES)
        with pytest.raises(ConfigurationError):
            SpaceSpec.build(tm, am, SPECS, _configs(), 0)
        with pytest.raises(ConfigurationError):
            SpaceSpec.build(tm, am, ["conv1@30"], _configs(), IMAGES)

    def test_from_simulator_inherits_split_policy(self):
        sim = CloudSimulator(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            proportional_split=True,
        )
        spec = SpaceSpec.from_simulator(sim, SPECS, _configs(), IMAGES)
        assert spec.proportional_split is True

    def test_cache_key_distinguishes_exact_ratios(self):
        # labels round to percent; the key must not (38.4% vs 38.42%)
        a = _space_spec()
        close = [PruneSpec({"conv1": 0.384}), PruneSpec({"conv1": 0.3842})]
        b = SpaceSpec.build(
            a.time_model, a.accuracy_model, close, _configs(), IMAGES
        )
        assert close[0].label() == close[1].label()
        assert len(set(b.cache_key()[2])) == 2


class TestCache:
    def test_content_equal_specs_share_one_evaluation(self):
        registry = MetricsRegistry()
        with scoped_observability(metrics=registry):
            # models built twice: identity differs, content matches
            first = evaluate(_space_spec())
            second = evaluate(_space_spec())
        assert first is second
        assert registry.counter("evalspace.cache_misses").value == 1
        assert registry.counter("evalspace.cache_hits").value == 1

    def test_split_policy_is_part_of_the_key(self):
        even = evaluate(_space_spec())
        proportional = evaluate(_space_spec(proportional_split=True))
        assert even is not proportional
        assert space_cache_info()["entries"] == 2

    def test_clear_and_info(self):
        evaluate(_space_spec())
        info = space_cache_info()
        assert info["entries"] == 1
        assert info["points"] == len(SPECS) * 3
        clear_space_cache()
        assert space_cache_info() == {"entries": 0, "points": 0}


class TestColumns:
    def test_columns_match_per_point_simulation(self):
        space = evaluate(_space_spec())
        sim = CloudSimulator(caffenet_time_model(), caffenet_accuracy_model())
        for i, spec in enumerate(SPECS):
            for j, config in enumerate(_configs()):
                expected = sim.run(spec, config, IMAGES)
                flat = i * space.n_configurations + j
                row = space.results[flat]
                assert row is space.result_at(i, j)
                assert (row.spec, row.configuration) == (spec, config)
                assert space.time_s[flat] == expected.time_s
                assert space.cost[flat] == expected.cost
                assert space.top1[flat] == expected.accuracy.top1
                assert space.top5[flat] == expected.accuracy.top5

    def test_proportional_split_columns_match_simulator(self):
        space = evaluate(_space_spec(proportional_split=True))
        sim = CloudSimulator(
            caffenet_time_model(),
            caffenet_accuracy_model(),
            proportional_split=True,
        )
        hetero = _configs()[2]  # mixed p2+g3: the split actually matters
        expected = sim.run(SPECS[3], hetero, IMAGES)
        got = space.result_at(3, 2)
        assert got.time_s == expected.time_s
        assert got.cost == expected.cost
        # and the heterogeneous makespan beats the paper's even split
        even = evaluate(_space_spec())
        assert got.time_s < even.result_at(3, 2).time_s

    def test_tar_car_match_row_methods(self):
        space = evaluate(_space_spec())
        for metric in ("top1", "top5"):
            tar = space.tar(metric)
            car = space.car(metric)
            for i, row in enumerate(space.results):
                assert tar[i] == row.tar(metric)
                assert car[i] == row.car(metric)

    def test_grid_reshape_and_time_hours(self):
        space = evaluate(_space_spec())
        grid = space.grid(space.time_s)
        assert grid.shape == (space.n_specs, space.n_configurations)
        assert grid[1, 2] == space.result_at(1, 2).time_s
        np.testing.assert_allclose(space.time_hours, space.time_s / 3600.0)

    def test_unknown_metric_and_objective_raise(self):
        space = evaluate(_space_spec())
        with pytest.raises(KeyError):
            space.accuracy("top3")
        with pytest.raises(ValueError):
            space.objective("energy")


class TestQueries:
    def test_feasible_mask_and_rows(self):
        space = evaluate(_space_spec())
        deadline = float(np.median(space.time_s))
        budget = float(np.median(space.cost))
        mask = space.feasible_mask(deadline_s=deadline, budget=budget)
        expected = [
            r
            for r in space.results
            if r.time_s <= deadline and r.cost <= budget
        ]
        assert int(mask.sum()) == len(expected)
        assert space.feasible(deadline_s=deadline, budget=budget) == tuple(
            expected
        )
        # unconstrained: everything is feasible
        assert space.feasible_mask().all()

    def test_front_matches_legacy_pareto_front(self):
        space = evaluate(_space_spec())
        budget = float(np.median(space.cost))
        feasible = space.feasible(budget=budget)
        legacy = [
            p.payload
            for p in pareto_front(
                [(r.accuracy.top1, r.cost, r) for r in feasible]
            )
        ]
        assert list(space.front("top1", "cost", budget=budget)) == legacy

    def test_pareto_over_empty_feasible_set_is_empty(self):
        space = evaluate(_space_spec())
        assert space.pareto("top5", "cost", budget=-1.0).size == 0
        assert space.front("top5", "cost", budget=-1.0) == ()

    def test_argmin_tar_car(self):
        space = evaluate(_space_spec())
        tar = space.tar("top5")
        assert space.argmin_tar("top5") == int(np.argmin(tar))
        mask = space.cost <= float(np.median(space.cost))
        idx = space.argmin_car("top1", mask)
        assert mask[idx]
        car = space.car("top1")
        assert car[idx] == car[np.flatnonzero(mask)].min()
        with pytest.raises(ConfigurationError):
            space.argmin_tar(mask=np.zeros(len(space), dtype=bool))

"""Figure 10: impact of accuracy on cloud cost (Pareto study).

Paper results (Observation 5): with a $300 budget for one million
Caffenet inferences there are 1 042 feasible configurations; five
Pareto-optimal for each metric, Top-1 27-53%, cost $69-$119; the
cost-accuracy frontier overlaps the time-accuracy frontier (cost is the
binding factor in both), and the Pareto pick at the highest accuracy
saves up to 55% cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configuration_study import (
    STUDY_BUDGET,
    ParetoStudy,
    pareto_study,
)
from repro.experiments.report import format_kv, format_table

__all__ = ["Fig10Result", "run", "compute", "render"]


@dataclass(frozen=True)
class Fig10Result:
    top1: ParetoStudy
    top5: ParetoStudy

    def frontier_overlap(self) -> float:
        """Fraction of cost-Pareto *degrees of pruning* also on the
        time-accuracy frontier.

        The paper notes the two frontiers coincide ("due to cost being
        the restricting factor when allocating resources in both
        cases"); the coincidence is in which application configurations
        are optimal — the time frontier realises each degree on the
        fastest affordable resources, the cost frontier on the
        cheapest, so we compare the degree labels.
        """
        time_study = pareto_study(
            "time", self.top1.metric, budget=STUDY_BUDGET
        )
        time_keys = {r.spec.label() for r in time_study.front}
        cost_keys = {r.spec.label() for r in self.top1.front}
        if not cost_keys:
            return 0.0
        return len(cost_keys & time_keys) / len(cost_keys)


def run(budget: float = STUDY_BUDGET) -> Fig10Result:
    return Fig10Result(
        top1=pareto_study("cost", "top1", budget=budget),
        top5=pareto_study("cost", "top5", budget=budget),
    )


def _study_data(study: ParetoStudy) -> dict:
    """One study as plain rows/series (the ExperimentResult.data shape)."""
    acc_lo, acc_hi = study.accuracy_range
    c_lo, c_hi = study.objective_range
    return {
        "metric": study.metric,
        "objective": study.objective,
        "total_points": study.total_points,
        "n_feasible": study.n_feasible,
        "n_pareto": study.n_pareto,
        "accuracy_range": [acc_lo, acc_hi],
        "objective_range": [c_lo, c_hi],
        "saving_at_best_accuracy": study.saving_at_best_accuracy(),
        "front": [
            {
                "degree": r.spec.label(),
                "configuration": r.configuration.label(),
                "accuracy": r.accuracy.get(study.metric),
                "objective": r.cost,
            }
            for r in study.front
        ],
    }


def compute(budget: float = STUDY_BUDGET) -> dict:
    """Structured data for Figure 10 (cost-accuracy Pareto studies)."""
    result = run(budget)
    return {
        "budget": budget,
        "top1": _study_data(result.top1),
        "top5": _study_data(result.top5),
        "frontier_overlap": result.frontier_overlap(),
    }


def _render_study(study: dict) -> str:
    acc_lo, acc_hi = study["accuracy_range"]
    c_lo, c_hi = study["objective_range"]
    metric = study["metric"]
    summary = format_kv(
        [
            ("points evaluated", study["total_points"]),
            ("feasible within budget", study["n_feasible"]),
            ("Pareto-optimal", study["n_pareto"]),
            (f"{metric} range (%)", f"{acc_lo:.1f} - {acc_hi:.1f}"),
            ("cost range ($)", f"{c_lo:.0f} - {c_hi:.0f}"),
            (
                "cost saving at best accuracy",
                f"{study['saving_at_best_accuracy'] * 100:.0f}%",
            ),
        ]
    )
    rows = [
        (
            front["degree"],
            front["configuration"],
            f"{front['accuracy']:.1f}",
            f"{front['objective']:.0f}",
        )
        for front in study["front"]
    ]
    return summary + "\n" + format_table(
        ["Degree of pruning", "Configuration", f"{metric} (%)", "Cost ($)"],
        rows,
    )


def render(data: dict | Fig10Result | None = None) -> str:
    if data is None:
        data = compute()
    elif isinstance(data, Fig10Result):
        data = {
            "top1": _study_data(data.top1),
            "top5": _study_data(data.top5),
            "frontier_overlap": data.frontier_overlap(),
        }
    return (
        "== (a) Top-1 ==\n"
        + _render_study(data["top1"])
        + "\n\n== (b) Top-5 ==\n"
        + _render_study(data["top5"])
        + f"\n\nfrontier overlap with time-accuracy front: "
        f"{data['frontier_overlap'] * 100:.0f}%"
    )

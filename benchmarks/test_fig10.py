"""Benchmark: Figure 10 — cost-accuracy Pareto study.

Paper: ~1 000 feasible configurations within the $300 budget; Pareto
costs in the ~$100 decade; up to 55% cost saving at the best accuracy;
cost frontier coincides with the time frontier.
"""

from __future__ import annotations

from repro.experiments import fig10_cost_pareto
from repro.experiments.configuration_study import study_space


def test_fig10_cost_pareto(benchmark):
    study_space()  # reuse the shared cached space; time the filtering
    result = benchmark(fig10_cost_pareto.run)
    assert 500 < result.top1.n_feasible < 2500
    lo, hi = result.top1.objective_range
    assert 40 < lo < hi < 160
    assert result.top1.saving_at_best_accuracy() >= 0.50
    assert result.frontier_overlap() >= 0.75

"""Tests for GPU devices, batching saturation, and latency models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.curves import PiecewiseCurve
from repro.errors import CalibrationError, MeasurementError
from repro.perf import (
    BatchingModel,
    CalibratedTimeModel,
    K80,
    M60,
    MeasurementRecord,
    RooflineLatencyModel,
    measure_min,
)
from repro.perf.latency import anchor_to_total_time, fit_layer_scales
from repro.pruning import PruneSpec


class TestDevices:
    def test_paper_core_counts(self):
        # Section 4.1.2: K80 has 2496 cores, M60 has 2048
        assert K80.cuda_cores == 2496
        assert M60.cuda_cores == 2048

    def test_m60_inference_speedup_calibration(self):
        # Figure 12 implies t_K80/t_M60 = (0.57/0.35) * (1.14/0.90)
        implied = (0.57 / 0.35) * (1.14 / 0.90)
        assert M60.inference_speedup == pytest.approx(implied, rel=0.01)

    def test_max_batch_shrinks_with_image_size(self):
        assert K80.max_batch(10.0) < K80.max_batch(5.0)

    def test_max_batch_at_least_one(self):
        assert K80.max_batch(1e9) == 1

    def test_max_batch_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            K80.max_batch(0.0)


class TestBatchingModel:
    def test_monotone_decreasing_per_image(self):
        m = BatchingModel(t_saturated=0.02)
        batches = np.array([1, 2, 8, 64, 300, 2000])
        times = m.per_image_time(batches)
        assert np.all(np.diff(times) < 0)

    def test_saturates_near_300(self):
        # the paper's Figure 5: K80 saturates around 300 inferences
        m = BatchingModel(t_saturated=0.0228, overhead_k=2.95)
        knee = m.knee_batch(threshold=0.85)
        assert 200 <= knee <= 400

    def test_utilisation_limits(self):
        m = BatchingModel(t_saturated=0.02)
        assert m.utilisation(1) < 0.5
        assert m.utilisation(100_000) > 0.99

    def test_total_time_counts_partial_batches(self):
        m = BatchingModel(t_saturated=1.0, overhead_k=0.0)
        # 10 images at batch 4 -> 3 batches of 4 seconds
        assert m.total_time(10, 4) == pytest.approx(12.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            BatchingModel(t_saturated=0.0)
        m = BatchingModel(t_saturated=1.0)
        with pytest.raises(ValueError):
            m.per_image_time(0)
        with pytest.raises(ValueError):
            m.total_time(0, 4)
        with pytest.raises(ValueError):
            m.knee_batch(1.5)

    @given(st.integers(1, 5000), st.integers(1, 512))
    @settings(max_examples=40, deadline=None)
    def test_total_time_at_least_saturated_lower_bound(self, images, batch):
        m = BatchingModel(t_saturated=0.01)
        assert m.total_time(images, batch) >= images * 0.01 * 0.999


class TestRoofline:
    def test_memory_bound_layer(self):
        model = RooflineLatencyModel(
            K80, compute_efficiency=1.0, memory_efficiency=1.0
        )
        from repro.cnn.layers import LayerStats

        # tiny compute, huge traffic -> memory time dominates
        stats = LayerStats(
            flops=1000, input_bytes=10**9, output_bytes=0, weight_bytes=0, params=0
        )
        t = model.layer_time("x", stats)
        assert t == pytest.approx(10**9 / (K80.bandwidth_gbs * 1e9))

    def test_compute_bound_layer(self):
        model = RooflineLatencyModel(
            K80, compute_efficiency=1.0, memory_efficiency=1.0
        )
        from repro.cnn.layers import LayerStats

        stats = LayerStats(
            flops=10**12, input_bytes=8, output_bytes=8, weight_bytes=0, params=0
        )
        t = model.layer_time("x", stats)
        assert t == pytest.approx(10**12 / (K80.peak_gflops * 1e9))

    def test_distribution_sums_to_one(self, caffenet_const):
        model = RooflineLatencyModel(K80)
        dist = model.time_distribution(caffenet_const)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_fit_layer_scales_reproduces_targets(self, caffenet_const):
        from repro.calibration.caffenet import CAFFENET_TIME_SHARES

        model = RooflineLatencyModel(K80)
        scales = fit_layer_scales(caffenet_const, model, CAFFENET_TIME_SHARES)
        fitted = RooflineLatencyModel(K80, layer_scales=scales)
        dist = fitted.time_distribution(caffenet_const)
        for layer, share in CAFFENET_TIME_SHARES.items():
            assert dist[layer] == pytest.approx(share, abs=0.005)

    def test_fit_rejects_bad_shares(self, caffenet_const):
        model = RooflineLatencyModel(K80)
        with pytest.raises(CalibrationError):
            fit_layer_scales(caffenet_const, model, {"conv1": 1.5})

    def test_invalid_efficiency(self):
        with pytest.raises(CalibrationError):
            RooflineLatencyModel(K80, compute_efficiency=0.0)


def _toy_time_model(**overrides) -> CalibratedTimeModel:
    defaults = dict(
        name="toy",
        t_saturated_k80=0.01,
        single_inference_s=0.04,
        time_curves={
            "a": PiecewiseCurve.linear(0.0, 1.0, 0.9, 0.8),
            "b": PiecewiseCurve.linear(0.0, 1.0, 0.9, 0.6),
        },
        synergy_gamma=2.0,
        floor_fraction=0.5,
    )
    defaults.update(overrides)
    return CalibratedTimeModel(**defaults)


class TestCalibratedTimeModel:
    def test_unpruned_fraction_is_one(self):
        assert _toy_time_model().time_fraction(PruneSpec.unpruned()) == 1.0

    def test_single_layer_follows_curve(self):
        m = _toy_time_model()
        assert m.time_fraction(PruneSpec({"a": 0.9})) == pytest.approx(0.8)
        assert m.time_fraction(PruneSpec({"a": 0.45})) == pytest.approx(0.9)

    def test_multi_layer_synergy(self):
        m = _toy_time_model()
        f = m.time_fraction(PruneSpec({"a": 0.9, "b": 0.9}))
        assert f == pytest.approx(max(0.5, (0.8 * 0.6) ** 2.0))

    def test_floor_clamps(self):
        m = _toy_time_model(floor_fraction=0.9)
        f = m.time_fraction(PruneSpec({"a": 0.9, "b": 0.9}))
        assert f == 0.9

    def test_unknown_layer_is_time_neutral(self):
        m = _toy_time_model()
        assert m.time_fraction(PruneSpec({"zzz": 0.9})) == 1.0

    def test_device_speedup_scales_time(self):
        m = _toy_time_model()
        spec = PruneSpec.unpruned()
        assert m.saturated_per_image(spec, M60) == pytest.approx(
            m.saturated_per_image(spec, K80) / M60.inference_speedup
        )

    def test_inference_time_monotone_in_images(self):
        m = _toy_time_model()
        spec = PruneSpec.unpruned()
        t1 = m.inference_time(spec, 1000, K80)
        t2 = m.inference_time(spec, 2000, K80)
        assert t2 > t1

    def test_anchor_to_total_time_exact(self):
        m = _toy_time_model()
        anchored = anchor_to_total_time(m, 10_000, K80, 120.0)
        t = anchored.inference_time(PruneSpec.unpruned(), 10_000, K80)
        assert t == pytest.approx(120.0, rel=1e-9)

    def test_anchor_rejects_nonpositive(self):
        with pytest.raises(CalibrationError):
            anchor_to_total_time(_toy_time_model(), 100, K80, 0.0)

    @given(
        st.floats(0.0, 0.89),
        st.floats(0.0, 0.89),
    )
    @settings(max_examples=40, deadline=None)
    def test_fraction_bounded(self, ra, rb):
        m = _toy_time_model()
        f = m.time_fraction(PruneSpec({"a": ra, "b": rb}))
        assert 0.5 <= f <= 1.0

    def test_more_pruning_never_slower(self):
        m = _toy_time_model()
        fractions = [
            m.time_fraction(PruneSpec.uniform(["a", "b"], r))
            for r in (0.0, 0.2, 0.4, 0.6, 0.8)
        ]
        assert fractions == sorted(fractions, reverse=True)


class TestMeasurement:
    def test_measure_min_returns_minimum(self):
        calls = []

        def fn():
            calls.append(1)
            return "ok"

        t, result = measure_min(fn, repeats=3)
        assert len(calls) == 3
        assert result == "ok"
        assert t >= 0

    def test_measure_min_rejects_zero_repeats(self):
        with pytest.raises(MeasurementError):
            measure_min(lambda: None, repeats=0)

    def test_record_ratios(self):
        rec = MeasurementRecord(
            spec=PruneSpec.unpruned(),
            time_s=3600.0,
            cost=0.9,
            top1=55.0,
            top5=80.0,
        )
        assert rec.tar("top5") == pytest.approx(1.0 / 0.80)
        assert rec.car("top1") == pytest.approx(0.9 / 0.55)
        assert rec.label == "nonpruned"

    def test_record_rejects_negative(self):
        with pytest.raises(MeasurementError):
            MeasurementRecord(
                spec=PruneSpec.unpruned(),
                time_s=-1.0,
                cost=0.0,
                top1=10.0,
                top5=20.0,
            )

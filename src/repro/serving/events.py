"""Minimal discrete-event machinery: a time-ordered event queue.

Events are ``(time, sequence, kind, payload)`` tuples in a heap; the
sequence number makes ordering total and deterministic when several
events share a timestamp (arrival before completion before timeout is
decided purely by insertion order, which the simulator controls).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """One scheduled event; comparison orders by (time, seq)."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event; same-time events pop in push order."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def extend_sorted(
        self, times, kind: str, payloads=None
    ) -> None:
        """Bulk-schedule a non-decreasing batch of same-kind events.

        Pop order is identical to pushing each ``(time, payload)`` in
        sequence — the heap's total order is ``(time, seq)`` and the
        batch takes consecutive sequence numbers — but the batch loads
        in one pass: a sorted list *is* a valid min-heap, so an empty
        queue adopts it directly and a non-empty one re-heapifies in
        O(n) instead of n pushes of O(log n).  This is how the
        simulators feed a whole arrival column to the event engine.

        ``payloads`` defaults to each event's index within the batch
        (the arrival convention).
        """
        times = [float(t) for t in times]
        if not times:
            return
        if times[0] < 0:
            raise ValueError("event time must be non-negative")
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError(
                "extend_sorted needs non-decreasing times"
            )
        seq = self._seq
        if payloads is None:
            payloads = range(len(times))
        events = [
            Event(time=t, seq=seq + i, kind=kind, payload=p)
            for i, (t, p) in enumerate(zip(times, payloads))
        ]
        self._seq = seq + len(events)
        if self._heap:
            self._heap.extend(events)
            heapq.heapify(self._heap)
        else:
            self._heap = events

    def pop(self) -> Event:
        """Remove and return the earliest scheduled event."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> float:
        """Time of the earliest event without popping it."""
        if not self._heap:
            raise IndexError("empty event queue")
        return self._heap[0].time

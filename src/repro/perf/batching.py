"""Parallel-inference (batch-size) saturation model — Figure 5.

The paper measures total time for a fixed workload while growing the
number of parallel inferences ``b`` on one K80, observing a gradual
decline that flattens around ``b ~= 300``.  We model the per-image time as

    t(b) = t_sat * (1 + k / sqrt(b))            for b <= b_max

a rational-saturation law: at ``b = 1`` the image pays the full kernel
launch / underutilisation overhead (``t(1) = t_sat * (1 + k)``); overhead
amortises like ``1/sqrt(b)`` as independent inferences share the device;
and by ``b ~ 300`` the curve is within a few percent of its floor, which
is the saturation knee the paper reports.  ``k`` is calibrated from the
paper's single-inference (0.09 s) and 50k-image (19 min => 22.8 ms/image)
Caffenet anchors: ``k = 0.09 / 0.0228 - 1 ~= 2.95``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchingModel"]


@dataclass(frozen=True)
class BatchingModel:
    """Per-image inference time as a function of batch size.

    Attributes
    ----------
    t_saturated:
        Asymptotic per-image seconds at full GPU utilisation.
    overhead_k:
        Dimensionless overhead coefficient (see module docstring).
    saturation_batch:
        Batch size at which the device is considered saturated; the
        paper's experimentally-determined value is 300 for the K80.
    """

    t_saturated: float
    overhead_k: float = 2.95
    saturation_batch: int = 300

    def __post_init__(self) -> None:
        if self.t_saturated <= 0:
            raise ValueError("t_saturated must be positive")
        if self.overhead_k < 0:
            raise ValueError("overhead_k must be non-negative")

    # ------------------------------------------------------------------
    def per_image_time(self, batch: int | np.ndarray) -> float | np.ndarray:
        """Seconds per image when ``batch`` inferences run in parallel."""
        b = np.asarray(batch, dtype=float)
        if np.any(b < 1):
            raise ValueError("batch must be >= 1")
        t = self.t_saturated * (1.0 + self.overhead_k / np.sqrt(b))
        return float(t) if np.isscalar(batch) else t

    def batch_time(self, batch: int) -> float:
        """Seconds to finish one batch of ``batch`` images."""
        return self.per_image_time(batch) * batch

    def total_time(self, images: int, batch: int) -> float:
        """Seconds to infer ``images`` at batch width up to ``batch``.

        The batch count ``n = ceil(W / b)`` follows the paper's Eq. 3;
        batches are then *balanced* (width ``ceil(W / n)``) the way any
        real serving loop packs a fixed workload — otherwise a workload
        slightly above a multiple of the maximum batch pays for a nearly
        empty final launch, which would wrongly penalise many-GPU
        instances in the CAR comparison (Figure 12).
        """
        if images < 1:
            raise ValueError("images must be >= 1")
        n_batches = -(-images // batch)
        balanced = -(-images // n_batches)
        return n_batches * self.batch_time(balanced)

    # ------------------------------------------------------------------
    def utilisation(self, batch: int) -> float:
        """Fraction of peak throughput achieved at ``batch``."""
        return self.t_saturated / self.per_image_time(batch)

    def is_saturated(self, batch: int, threshold: float = 0.85) -> bool:
        """True once utilisation reaches ``threshold`` (defaults to the
        level the model reaches at the paper's 300-inference knee)."""
        return self.utilisation(batch) >= threshold

    def knee_batch(self, threshold: float = 0.85) -> int:
        """Smallest batch with utilisation >= ``threshold``.

        Closed form from the saturation law:
        ``b = (k * u / (1 - u))^2`` at utilisation ``u``.
        """
        if not 0 < threshold < 1:
            raise ValueError("threshold must be in (0, 1)")
        b = (self.overhead_k * threshold / (1.0 - threshold)) ** 2
        return max(1, int(np.ceil(b)))

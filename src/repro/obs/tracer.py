"""Nestable spans: the *where did the time go* half of repro.obs.

A span records a name, wall and CPU duration, free-form tags, and its
parent span — enough to reconstruct the call tree of one run.  The
tracer is process-local and append-only; spans are kept in *start*
order, so a depth-first walk of ``spans`` replays the run.

Threading: the span *list* is shared (one trace per tracer, guarded by
a lock), but the open-span *stack* is thread-local — concurrent
request threads each nest their own spans without parenting onto each
other.  A thread whose stack is empty consults the request-scoped
:class:`~repro.obs.context.TraceContext` (if one is active) for its
parent, which is how a ``ThreadingHTTPServer`` worker's root span
attaches under the client span that caused it; every span opened
inside an active context is also tagged with the context's
``trace_id``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.context import current_trace
from repro.obs.events import get_event_bus

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed region of a run.

    ``start_s`` is the offset from the tracer's epoch (its creation
    instant), not an absolute timestamp — traces from different
    processes stay comparable and runs stay reproducible.
    """

    name: str
    span_id: int
    parent_id: int | None = None
    tags: dict[str, object] = field(default_factory=dict)
    start_s: float = 0.0
    wall_s: float | None = None
    cpu_s: float | None = None

    @property
    def finished(self) -> bool:
        return self.wall_s is not None

    @property
    def trace_id(self) -> str | None:
        """The request trace this span belongs to, if it was opened
        inside an active :class:`~repro.obs.context.TraceContext`."""
        trace_id = self.tags.get("trace_id")
        return None if trace_id is None else str(trace_id)

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }


class Tracer:
    """Collects spans; ``enabled=False`` makes every span a no-op."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags: object):
        """Open a nested span; closes (and times it) on exit.

        Yields the :class:`Span` so callers can attach tags discovered
        mid-flight (``span.tags["batches"] = n``); yields ``None`` when
        the tracer is disabled.

        Parentage: the enclosing span on *this thread* wins; a root
        span (empty thread stack) parents onto the active
        :class:`~repro.obs.context.TraceContext`'s ``parent_span_id``
        instead, and any span opened inside a context is tagged with
        its ``trace_id``.
        """
        if not self.enabled:
            yield None
            return
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        context = current_trace()
        tags = dict(tags)
        if context is not None:
            if parent is None:
                parent = context.parent_span_id
            tags.setdefault("trace_id", context.trace_id)
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                name=name,
                span_id=span_id,
                parent_id=parent,
                tags=tags,
                start_s=time.perf_counter() - self._epoch,
            )
            self._spans.append(span)
        stack.append(span)
        bus = get_event_bus()
        if bus.active:
            bus.emit(
                "span.open",
                name=name,
                span_id=span.span_id,
                parent_id=parent,
                start_s=span.start_s,
                tags=dict(tags),
            )
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield span
        finally:
            span.wall_s = time.perf_counter() - wall0
            span.cpu_s = time.process_time() - cpu0
            stack.pop()
            if bus.active:
                bus.emit(
                    "span.close",
                    name=name,
                    span_id=span.span_id,
                    wall_s=span.wall_s,
                    cpu_s=span.cpu_s,
                    tags=dict(span.tags),
                )

    # ------------------------------------------------------------------
    @property
    def spans(self) -> tuple[Span, ...]:
        """All spans recorded so far, in start order."""
        with self._lock:
            return tuple(self._spans)

    def find(self, name: str) -> tuple[Span, ...]:
        """Spans with the given name, in start order."""
        return tuple(s for s in self.spans if s.name == name)

    def children(self, span: Span) -> tuple[Span, ...]:
        """Direct children of ``span``."""
        return tuple(
            s for s in self.spans if s.parent_id == span.span_id
        )

    def depth(self, span: Span) -> int:
        """Nesting depth (root spans are depth 0).

        A span whose parent id is not in this tracer (a remote parent
        propagated over the ``X-Repro-Trace`` header from another
        process) counts as a root.
        """
        by_id = {s.span_id: s for s in self.spans}
        depth = 0
        while (
            span.parent_id is not None and span.parent_id in by_id
        ):
            span = by_id[span.parent_id]
            depth += 1
        return depth

    def as_dicts(self) -> tuple[dict[str, object], ...]:
        """JSON-ready representation of the whole trace."""
        return tuple(s.as_dict() for s in self.spans)

    def reset(self) -> None:
        """Drop all recorded spans (open spans keep closing correctly)."""
        with self._lock:
            self._spans.clear()

"""Googlenet calibration.

The paper's Googlenet data is sparser than Caffenet's and its published
numbers are not fully mutually consistent (Figure 7's subplot axes span
different baselines); where they conflict we follow the body text:

Time anchors (one K80, 50 000 images):

* single inference: **0.16 s** unpruned, **0.10 s** at 90% uniform prune
  (Figure 4) — sparse-compute floor 0.10/0.16 = 0.625;
* ``conv2-3x3`` sweep: **13 -> 9 min** at 90% prune, "about 30%"
  reduction and the strongest of the six selected layers (Section 4.3.1)
  — this fixes the unpruned batched baseline at 13 min;
* the other five selected layers reduce time only a few percent each
  (one of 57 convolutions); fractions estimated from Figure 7 subplots.

Accuracy anchors:

* canonical GoogLeNet baselines: Top-1 ~= 68.7%, Top-5 ~= 89%;
* "the accuracy starts dropping only after 60% of pruning" for the first
  six layers (Section 4.3.1) — knee at 0.6 for the selected layers and
  as the default for the remaining inception convolutions;
* the stem ``conv1-7x7-s2`` is input-adjacent like Caffenet's conv1 and
  collapses hardest; inner inception branches are redundant (four
  parallel paths) and degrade mildly.
"""

from __future__ import annotations

from repro.calibration.accuracy_model import AccuracyModel, AccuracyPair
from repro.calibration.curves import PiecewiseCurve
from repro.perf.latency import CalibratedTimeModel

__all__ = [
    "GOOGLENET_SWEET_SPOTS",
    "GOOGLENET_BASELINE",
    "googlenet_time_model",
    "googlenet_accuracy_model",
    "GOOGLENET_T0_MINUTES",
]

#: Unpruned accuracy (percent), canonical GoogLeNet on ImageNet.
GOOGLENET_BASELINE = AccuracyPair(top1=68.7, top5=89.0)

#: Unpruned 50k-image inference time on one K80 (minutes) — Section 4.3.1.
GOOGLENET_T0_MINUTES = 13.0

#: Knee ratios for the six selected layers (Section 4.3.1: "after 60%").
GOOGLENET_SWEET_SPOTS: dict[str, float] = {
    "conv1-7x7-s2": 0.6,
    "conv2-3x3": 0.6,
    "inception-3a-3x3": 0.6,
    "inception-4d-5x5": 0.6,
    "inception-4e-5x5": 0.6,
    "inception-5a-3x3": 0.6,
}

#: Remaining-time fraction at 90% single-layer prune (Figure 7).
_TIME_FRACTION_AT_90: dict[str, float] = {
    "conv1-7x7-s2": 0.80,
    "conv2-3x3": 9.0 / 13.0,
    "inception-3a-3x3": 0.95,
    "inception-4d-5x5": 0.95,
    "inception-4e-5x5": 0.99,
    "inception-5a-3x3": 0.98,
}

#: Top-5 percentage points lost at 90% single-layer prune.
_TOP5_DROP_AT_90: dict[str, float] = {
    "conv1-7x7-s2": 89.0,  # input-adjacent stem collapses, like conv1
    "conv2-3x3": 45.0,
    "inception-3a-3x3": 28.0,
    "inception-4d-5x5": 28.0,
    "inception-4e-5x5": 28.0,
    "inception-5a-3x3": 28.0,
}

_TOP1_SCALE = GOOGLENET_BASELINE.top1 / GOOGLENET_BASELINE.top5


def googlenet_time_model() -> CalibratedTimeModel:
    """The calibrated Googlenet inference-time model."""
    curves = {
        layer: PiecewiseCurve.linear(0.0, 1.0, 0.9, frac)
        for layer, frac in _TIME_FRACTION_AT_90.items()
    }
    from repro.perf.device import K80
    from repro.perf.latency import anchor_to_total_time

    model = CalibratedTimeModel(
        name="googlenet",
        t_saturated_k80=GOOGLENET_T0_MINUTES * 60.0 / 50_000,
        single_inference_s=0.16,
        time_curves=curves,
        synergy_gamma=2.0,
        floor_fraction=0.10 / 0.16,
        per_image_mb=8.0,
        model_mb=28.0,  # 7 M float32 parameters
        saturation_batch=300,
    )
    # pin the anchor: 13 min for 50k images on one K80 (Section 4.3.1)
    return anchor_to_total_time(model, 50_000, K80, GOOGLENET_T0_MINUTES * 60.0)


def googlenet_accuracy_model() -> AccuracyModel:
    """The calibrated Googlenet accuracy model."""
    top5_curves = {
        layer: PiecewiseCurve.flat_then_linear(
            knee_x=GOOGLENET_SWEET_SPOTS[layer],
            end_x=0.9,
            start_y=0.0,
            end_y=drop,
        )
        for layer, drop in _TOP5_DROP_AT_90.items()
    }
    top1_curves = {
        layer: PiecewiseCurve.flat_then_linear(
            knee_x=GOOGLENET_SWEET_SPOTS[layer],
            end_x=0.9,
            start_y=0.0,
            end_y=min(drop * _TOP1_SCALE, GOOGLENET_BASELINE.top1),
        )
        for layer, drop in _TOP5_DROP_AT_90.items()
    }
    return AccuracyModel(
        name="googlenet",
        baseline=GOOGLENET_BASELINE,
        drop_curves_top1=top1_curves,
        drop_curves_top5=top5_curves,
        sweet_spots=GOOGLENET_SWEET_SPOTS,
        eta_top1=8.6,
        eta_top5=11.0,
        default_knee=0.6,
        default_drop_scale=0.25,
    )

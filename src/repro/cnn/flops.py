"""Network-level FLOP / traffic accounting helpers.

Thin aggregation layer over the per-layer cost protocol; the GPU latency
model and the figure-regeneration code consume these dictionaries rather
than poking at layers directly.
"""

from __future__ import annotations

from repro.cnn.layers import LayerStats
from repro.cnn.network import Network

__all__ = [
    "flop_breakdown",
    "traffic_breakdown",
    "param_breakdown",
    "conv_flop_fraction",
    "sparsity_summary",
]


def flop_breakdown(network: Network, effective: bool = False) -> dict[str, int]:
    """Per-top-level-layer FLOPs at batch size 1."""
    return {
        name: stats.flops
        for name, stats in network.layer_stats(effective=effective).items()
    }


def traffic_breakdown(
    network: Network, effective: bool = False
) -> dict[str, int]:
    """Per-top-level-layer bytes moved (activations + weights)."""
    return {
        name: stats.total_bytes
        for name, stats in network.layer_stats(effective=effective).items()
    }


def param_breakdown(network: Network) -> dict[str, int]:
    """Per-top-level-layer learnable parameter counts."""
    return {
        name: stats.params for name, stats in network.layer_stats().items()
    }


def conv_flop_fraction(network: Network) -> float:
    """Fraction of total FLOPs spent in convolution layers.

    The paper's Section 4.3 justifies pruning only convolutions because
    they account for >90% of inference time; this is the FLOP-side
    counterpart of that observation.
    """
    from repro.cnn.conv import ConvLayer
    from repro.cnn.inception import InceptionModule

    breakdown = network.layer_stats()
    total = sum(s.flops for s in breakdown.values())
    conv = 0
    for layer in network.layers:
        if isinstance(layer, (ConvLayer, InceptionModule)):
            conv += breakdown[layer.name].flops
    return conv / total if total else 0.0


def sparsity_summary(network: Network) -> dict[str, float]:
    """Per-weighted-layer density (1.0 = unpruned)."""
    return {
        layer.name: layer.density() for layer in network.weighted_layers()
    }


def total_stats(network: Network, effective: bool = False) -> LayerStats:
    """Convenience alias for :meth:`Network.total_stats`."""
    return network.total_stats(effective=effective)

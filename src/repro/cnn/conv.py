"""2-D convolution layer with grouped-convolution support.

The forward pass uses the classic im2col + GEMM lowering — the same strategy
Caffe uses on both CPU and GPU — so the arithmetic executed here has the same
structure the paper's measurements captured.  Grouped convolution is needed
because Caffenet (AlexNet) splits conv2, conv4 and conv5 into two groups, a
relic of the original two-GPU training; it is also why Table 1 lists conv2's
filter size as ``5x5x48`` although conv1 produces 96 channels.
"""

from __future__ import annotations

import numpy as np

from repro.cnn.layers import DTYPE, ITEMSIZE, Layer, LayerStats, WeightedLayer
from repro.errors import ShapeError

__all__ = ["ConvLayer", "im2col", "conv_output_hw"]


def conv_output_hw(
    h: int, w: int, kernel: int, stride: int, pad: int
) -> tuple[int, int]:
    """Spatial output size of a convolution/pooling window sweep."""
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"kernel {kernel} stride {stride} pad {pad} does not fit "
            f"input {h}x{w}"
        )
    return out_h, out_w


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Lower image patches to columns for GEMM-based convolution.

    Parameters
    ----------
    x:
        Input batch of shape ``(n, c, h, w)``.
    kernel, stride, pad:
        Square window geometry.

    Returns
    -------
    cols, out_h, out_w:
        ``cols`` has shape ``(n, c * kernel * kernel, out_h * out_w)``.
        Patches are gathered with stride tricks (views, no per-patch copy)
        and materialised once by the final ``reshape``.
    """
    n, c, h, w = x.shape
    out_h, out_w = conv_output_hw(h, w, kernel, stride, pad)
    if pad:
        x = np.pad(
            x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    sn, sc, sh, sw = x.strides
    # windows view: (n, c, out_h, out_w, kernel, kernel)
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # -> (n, c, kernel, kernel, out_h, out_w) -> (n, c*k*k, out_h*out_w)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        n, c * kernel * kernel, out_h * out_w
    )
    return np.ascontiguousarray(cols), out_h, out_w


class ConvLayer(WeightedLayer):
    """Square-kernel 2-D convolution with optional channel groups.

    Parameters
    ----------
    name:
        Layer identifier (e.g. ``"conv1"``).
    in_channels, out_channels:
        Channel counts; both must be divisible by ``groups``.
    kernel:
        Square kernel side length.
    stride, pad:
        Window stride and symmetric zero padding.
    groups:
        Number of channel groups (1 = ordinary convolution; 2 for
        Caffenet's conv2/conv4/conv5).
    rng:
        Source for He-style weight initialisation; pass a seeded
        ``numpy.random.Generator`` for reproducible networks.
    """

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        groups: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if in_channels % groups or out_channels % groups:
            raise ShapeError(
                f"{name}: channels ({in_channels}->{out_channels}) not "
                f"divisible by groups={groups}"
            )
        if kernel < 1 or stride < 1 or pad < 0:
            raise ShapeError(f"{name}: invalid geometry k={kernel} s={stride} p={pad}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.groups = groups
        rng = rng or np.random.default_rng(0)
        fan_in = (in_channels // groups) * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)
        # weights: (out_channels, in_channels // groups, kernel, kernel)
        # scale before the cast: a float64 scalar would silently promote
        # the whole array back to float64
        self.weights = (
            rng.standard_normal(
                (out_channels, in_channels // groups, kernel, kernel)
            )
            * scale
        ).astype(DTYPE)
        self.bias = np.zeros(out_channels, dtype=DTYPE)

    # ------------------------------------------------------------------
    @property
    def filter_shape(self) -> tuple[int, int, int]:
        """Per-filter shape ``(kernel, kernel, in_channels_per_group)``.

        Matches the "Filter Size" column of the paper's Table 1 (e.g.
        conv2 of Caffenet reports ``5x5x48`` because of its two groups).
        """
        return (self.kernel, self.kernel, self.in_channels // self.groups)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected {self.in_channels} input channels, got {c}"
            )
        out_h, out_w = conv_output_hw(h, w, self.kernel, self.stride, self.pad)
        return (self.out_channels, out_h, out_w)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._require_rank(x, 4)
        n, c, h, w = x.shape
        out_c, out_h, out_w = self.output_shape((c, h, w))
        g = self.groups
        icg = self.in_channels // g
        ocg = self.out_channels // g
        out = np.empty((n, out_c, out_h * out_w), dtype=DTYPE)
        for gi in range(g):
            xs = x[:, gi * icg : (gi + 1) * icg]
            cols, _, _ = im2col(xs, self.kernel, self.stride, self.pad)
            wmat = self.weights[gi * ocg : (gi + 1) * ocg].reshape(ocg, -1)
            # (ocg, icg*k*k) @ (n, icg*k*k, hw) -> (n, ocg, hw)
            out[:, gi * ocg : (gi + 1) * ocg] = np.matmul(wmat, cols)
        out += self.bias[None, :, None]
        return out.reshape(n, out_c, out_h, out_w)

    # ------------------------------------------------------------------
    def _positions(self, input_shape: tuple[int, ...]) -> int:
        _, h, w = input_shape
        out_h, out_w = conv_output_hw(h, w, self.kernel, self.stride, self.pad)
        return out_h * out_w

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        c, h, w = input_shape
        out_c, out_h, out_w = self.output_shape(input_shape)
        positions = out_h * out_w
        macs_per_position = self.weights.size // self.out_channels  # per filter
        flops = 2 * positions * self.out_channels * macs_per_position
        return LayerStats(
            flops=flops,
            input_bytes=c * h * w * ITEMSIZE,
            output_bytes=out_c * out_h * out_w * ITEMSIZE,
            weight_bytes=(self.weights.size + self.bias.size) * ITEMSIZE,
            params=self.weights.size + self.bias.size,
        )

    def effective_stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        dense = self.stats(input_shape)
        d = self.density()
        nz_bytes = (self.nnz() + self.bias.size) * ITEMSIZE
        return LayerStats(
            flops=int(round(dense.flops * d)),
            input_bytes=dense.input_bytes,
            output_bytes=dense.output_bytes,
            weight_bytes=nz_bytes,
            params=dense.params,
        )

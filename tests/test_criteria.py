"""Tests for pruning-criterion variants and their comparison study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn import build_small_cnn
from repro.errors import PruningError
from repro.pruning import L1FilterPruner, PruneSpec
from repro.pruning.l1_filter import filters_to_prune


class TestCriteria:
    def test_l1_vs_l2_can_differ(self, rng):
        # one filter with a single huge weight (big L2, moderate L1),
        # one with many medium weights (big L1, moderate L2)
        w = np.zeros((3, 16), dtype=np.float32)
        w[0, 0] = 4.0          # L1 = 4,  L2 = 16
        w[1, :] = 0.3          # L1 = 4.8, L2 = 1.44
        w[2, :] = 1.0          # clearly largest on both
        l1_dead = filters_to_prune(w, 1 / 3, criterion="l1")
        l2_dead = filters_to_prune(w, 1 / 3, criterion="l2")
        assert list(l1_dead) == [0]
        assert list(l2_dead) == [1]

    def test_random_is_seed_deterministic(self, rng):
        w = rng.standard_normal((8, 5)).astype(np.float32)
        a = filters_to_prune(w, 0.5, criterion="random", seed=3)
        b = filters_to_prune(w, 0.5, criterion="random", seed=3)
        np.testing.assert_array_equal(a, b)
        c = filters_to_prune(w, 0.5, criterion="random", seed=4)
        assert not np.array_equal(a, c)

    def test_unknown_criterion_rejected(self, rng):
        w = rng.standard_normal((4, 3)).astype(np.float32)
        with pytest.raises(PruningError):
            filters_to_prune(w, 0.5, criterion="l3")
        with pytest.raises(PruningError):
            L1FilterPruner(criterion="taylor")

    def test_pruner_uses_criterion(self, small_cnn):
        l1 = L1FilterPruner(propagate=False, criterion="l1").apply(
            small_cnn, PruneSpec({"conv2": 0.5})
        )
        rnd = L1FilterPruner(
            propagate=False, criterion="random", seed=9
        ).apply(small_cnn, PruneSpec({"conv2": 0.5}))
        # same density, (almost surely) different filters
        assert l1.layer("conv2").density() == pytest.approx(
            rnd.layer("conv2").density()
        )
        assert not np.array_equal(
            l1.layer("conv2").weights, rnd.layer("conv2").weights
        )


class TestCriterionStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments import ext_criterion_comparison

        ext_criterion_comparison.run.cache_clear()
        return ext_criterion_comparison.run()

    def test_three_criteria_swept(self, study):
        assert {s.criterion for s in study.sweeps} == {
            "l1",
            "l2",
            "random",
        }

    def test_all_start_at_baseline(self, study):
        baselines = {s.top1[0] for s in study.sweeps}
        assert len(baselines) == 1

    def test_saliency_beats_random_in_sweet_spot_range(self, study):
        for ratio in (0.25, 0.5):
            best_saliency = max(
                study.sweep("l1").accuracy_at(ratio),
                study.sweep("l2").accuracy_at(ratio),
            )
            assert best_saliency > study.sweep("random").accuracy_at(
                ratio
            )

    def test_saliency_advantage_material(self, study):
        assert study.saliency_advantage(0.5) > 5.0

    def test_render(self, study):
        from repro.experiments import ext_criterion_comparison

        text = ext_criterion_comparison.render(study)
        assert "random" in text and "saliency advantage" in text

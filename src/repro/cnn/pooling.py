"""Spatial pooling layers (max, average, global average).

Caffenet uses overlapping 3x3/stride-2 max pooling after conv1, conv2 and
conv5; Googlenet additionally uses average pooling inside inception modules
and a global average pool before its classifier.
"""

from __future__ import annotations

import numpy as np

from repro.cnn.conv import conv_output_hw, im2col
from repro.cnn.layers import ITEMSIZE, Layer, LayerStats

__all__ = ["MaxPool", "AvgPool", "GlobalAvgPool"]


class _Pool(Layer):
    """Shared machinery for windowed pooling layers."""

    #: per-window-element FLOP cost (1 compare or 1 add).
    _op_cost = 1

    def __init__(
        self, name: str, kernel: int, stride: int, pad: int = 0
    ) -> None:
        super().__init__(name)
        self.kernel = kernel
        self.stride = stride
        self.pad = pad

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h, out_w = conv_output_hw(h, w, self.kernel, self.stride, self.pad)
        return (c, out_h, out_w)

    def _windows(self, x: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Window view of shape ``(n, c, k*k, out_h*out_w)``."""
        n, c, h, w = x.shape
        cols, out_h, out_w = im2col(
            x.reshape(n * c, 1, h, w), self.kernel, self.stride, self.pad
        )
        return cols.reshape(n, c, self.kernel * self.kernel, -1), out_h, out_w

    def _reduce(self, windows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._require_rank(x, 4)
        n, c = x.shape[:2]
        windows, out_h, out_w = self._windows(x)
        return self._reduce(windows).reshape(n, c, out_h, out_w)

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        c, h, w = input_shape
        out_c, out_h, out_w = self.output_shape(input_shape)
        flops = self._op_cost * out_c * out_h * out_w * self.kernel * self.kernel
        return LayerStats(
            flops=flops,
            input_bytes=c * h * w * ITEMSIZE,
            output_bytes=out_c * out_h * out_w * ITEMSIZE,
            weight_bytes=0,
            params=0,
        )


class MaxPool(_Pool):
    """Max pooling over square windows (padding contributes ``-inf``)."""

    def _windows(self, x: np.ndarray) -> tuple[np.ndarray, int, int]:
        # zero-padding would corrupt max pooling of negative activations,
        # so pad with -inf before the shared window extraction.
        if self.pad:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)),
                mode="constant",
                constant_values=-np.inf,
            )
            saved, self.pad = self.pad, 0
            try:
                return super()._windows(x)
            finally:
                self.pad = saved
        return super()._windows(x)

    def _reduce(self, windows: np.ndarray) -> np.ndarray:
        return windows.max(axis=2)


class AvgPool(_Pool):
    """Average pooling over square windows."""

    def _reduce(self, windows: np.ndarray) -> np.ndarray:
        return windows.mean(axis=2)


class GlobalAvgPool(Layer):
    """Average over all spatial positions, producing ``(n, c, 1, 1)``."""

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, _h, _w = input_shape
        return (c, 1, 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._require_rank(x, 4)
        return x.mean(axis=(2, 3), keepdims=True)

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        c, h, w = input_shape
        return LayerStats(
            flops=c * h * w,
            input_bytes=c * h * w * ITEMSIZE,
            output_bytes=c * ITEMSIZE,
            weight_bytes=0,
            params=0,
        )

"""Smoke tests: every example script runs and prints its key findings.

Examples are the library's contract with new users; these tests execute
them as ``__main__`` (runpy) and check their headline output lines.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "nonpruned" in out and "conv1-2" in out
        assert "saves 33% time" in out

    def test_social_media_filter(self, capsys):
        out = _run("social_media_filter.py", capsys)
        assert "strict" in out
        assert "review bar" in out

    def test_budget_planner(self, capsys):
        out = _run("budget_planner.py", capsys)
        assert "deadline" in out
        assert "infeasible" in out or "%" in out

    @pytest.mark.slow
    def test_pruning_study(self, capsys):
        out = _run("pruning_study.py", capsys)
        assert "sweet spot" in out
        assert "flat-then-drop" in out

    def test_latency_slo(self, capsys):
        out = _run("latency_slo.py", capsys)
        assert "p99" in out
        assert "saves" in out

    def test_paper_figures(self, capsys):
        out = _run("paper_figures.py", capsys)
        assert "Fig 4" in out and "Fig 10" in out
        assert "Pareto-optimal" in out

    def test_calibrate_your_model(self, capsys):
        out = _run("calibrate_your_model.py", capsys)
        assert "fitted models" in out
        assert "iso-accuracy frontier" in out

    def test_planning_service(self, capsys):
        out = _run("planning_service.py", capsys)
        assert "service up at http://127.0.0.1:" in out
        assert "minimum budget for 78% top5" in out
        assert "[infeasible]" in out
        assert "hit ratio" in out
        assert "repro_service_requests_total" in out

    def test_telemetry_tour(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = _run("telemetry_tour.py", capsys)
        assert "SLO alert(s) fired" in out
        assert "FIRING" in out
        assert "ui.perfetto.dev" in out
        assert (tmp_path / "telemetry_out" / "trace.json").exists()
        assert (tmp_path / "telemetry_out" / "metrics.prom").exists()
        assert (tmp_path / "telemetry_out" / "events.jsonl").exists()

"""Request arrival processes (deterministic given a seed).

All generators return a sorted array of arrival timestamps within
``[0, duration)``.  Poisson models steady social-feed traffic; the
bursty process is a two-state modulated Poisson (quiet/burst) capturing
upload spikes, which is what stresses a latency SLO.
"""

from __future__ import annotations

import numpy as np

__all__ = ["poisson_arrivals", "uniform_arrivals", "bursty_arrivals"]


def poisson_arrivals(
    rate_per_s: float, duration_s: float, seed: int = 0
) -> np.ndarray:
    """Homogeneous Poisson process: exponential inter-arrival times."""
    if rate_per_s <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    # draw with headroom, then trim to the window
    expected = rate_per_s * duration_s
    n = int(expected + 6 * np.sqrt(expected) + 16)
    gaps = rng.exponential(1.0 / rate_per_s, size=n)
    times = np.cumsum(gaps)
    while times[-1] < duration_s:  # pragma: no cover - headroom fallback
        more = rng.exponential(1.0 / rate_per_s, size=n)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times < duration_s]


def uniform_arrivals(
    rate_per_s: float, duration_s: float, seed: int = 0
) -> np.ndarray:
    """Evenly spaced arrivals (a deterministic load baseline)."""
    if rate_per_s <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    n = int(rate_per_s * duration_s)
    return np.arange(n) / rate_per_s


def bursty_arrivals(
    base_rate_per_s: float,
    duration_s: float,
    burst_factor: float = 5.0,
    burst_fraction: float = 0.2,
    phase_s: float = 10.0,
    seed: int = 0,
) -> np.ndarray:
    """Two-state modulated Poisson: quiet periods and bursts.

    The process alternates exponentially-distributed quiet and burst
    phases (mean length ``phase_s``); within a burst the arrival rate is
    ``burst_factor`` x the quiet rate.  ``burst_fraction`` is the long-run
    fraction of time spent bursting; the overall mean rate is
    ``base_rate_per_s`` regardless of the burst parameters.
    """
    if not 0 < burst_fraction < 1:
        raise ValueError("burst_fraction must be in (0, 1)")
    if burst_factor <= 1:
        raise ValueError("burst_factor must exceed 1")
    rng = np.random.default_rng(seed)
    # normalise so the time-average rate equals base_rate_per_s
    quiet_rate = base_rate_per_s / (
        (1 - burst_fraction) + burst_fraction * burst_factor
    )
    burst_rate = quiet_rate * burst_factor
    times: list[np.ndarray] = []
    t = 0.0
    bursting = False
    while t < duration_s:
        mean_len = phase_s * (
            burst_fraction if bursting else (1 - burst_fraction)
        ) * 2.0
        length = rng.exponential(mean_len)
        end = min(t + length, duration_s)
        rate = burst_rate if bursting else quiet_rate
        expected = rate * (end - t)
        if expected > 0:
            n = int(expected + 6 * np.sqrt(expected) + 16)
            gaps = rng.exponential(1.0 / rate, size=n)
            phase_times = t + np.cumsum(gaps)
            times.append(phase_times[phase_times < end])
        t = end
        bursting = not bursting
    if not times:
        return np.empty(0)
    return np.sort(np.concatenate(times))

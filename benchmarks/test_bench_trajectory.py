"""Benchmark: the bench-suite scenarios under pytest-benchmark.

The ``repro bench`` trajectory recorder and this file exercise the same
hot paths; running them here puts the scenarios under pytest-benchmark's
statistics (and its ``--benchmark-compare`` tooling) while the
``BENCH_<n>.json`` gate covers day-to-day CI.  The claims:

* every registered scenario runs clean under a fresh scope;
* the per-scenario work counters match the committed baseline exactly
  (the same tolerance-free contract ``repro bench --check`` enforces).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.bench import SCENARIOS, latest_record, run_suite

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario(benchmark, name):
    from repro.core.evalspace import clear_space_cache
    from repro.obs import MetricsRegistry, Tracer, scoped_observability

    def run():
        clear_space_cache()
        registry = MetricsRegistry()
        with scoped_observability(Tracer(enabled=False), registry):
            SCENARIOS[name]()
        return registry.snapshot()["counters"]

    counters = benchmark(run)
    baseline = latest_record(REPO_ROOT)
    if baseline is not None and name in {
        e.name for e in baseline.entries
    }:
        assert counters == baseline.entry(name).counters


def test_suite_is_deterministic_across_repeats():
    entries = run_suite(repeats=2)
    assert {e.name for e in entries} == set(SCENARIOS)

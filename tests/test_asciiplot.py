"""Tests for the ASCII plotting helpers."""

from __future__ import annotations

import pytest

from repro.experiments.asciiplot import line, multi_line, scatter


class TestScatter:
    def test_marks_every_point(self):
        out = scatter([0, 1, 2], [0, 1, 2], width=30, height=10)
        assert out.count("x") == 3

    def test_highlight_uses_star(self):
        out = scatter([0, 1, 2], [0, 2, 1], highlight=[1])
        assert "*" in out

    def test_axis_labels_present(self):
        out = scatter(
            [0, 10], [5, 50], xlabel="accuracy", ylabel="time"
        )
        assert "x: accuracy" in out and "y: time" in out

    def test_bounds_rendered(self):
        out = scatter([0.0, 10.0], [5.0, 50.0])
        assert "10" in out and "50" in out

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            scatter([1, 2], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            scatter([], [])

    def test_constant_series_does_not_crash(self):
        out = scatter([1, 2, 3], [5, 5, 5])
        assert "x" in out


class TestLine:
    def test_title_rendered(self):
        out = line([0, 1], [0, 1], title="Figure 4")
        assert "Figure 4" in out

    def test_line_is_dense(self):
        out = line([0, 10], [0, 10], width=40, height=12)
        # a diagonal through a 40-wide grid leaves many marks
        assert out.count("x") > 10


class TestMultiLine:
    def test_legend(self):
        out = multi_line(
            [
                ("caffenet", [0, 1], [1, 0]),
                ("googlenet", [0, 1], [2, 1]),
            ]
        )
        assert "x caffenet" in out
        assert "o googlenet" in out

    def test_distinct_markers(self):
        out = multi_line(
            [("a", [0, 1], [0, 0]), ("b", [0, 1], [1, 1])]
        )
        assert "x" in out and "o" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multi_line([])

"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch one type to handle any library-originated failure while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "ConfigurationError",
    "PruningError",
    "CalibrationError",
    "InfeasibleError",
    "MeasurementError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """A tensor or layer was given data of an incompatible shape."""


class ConfigurationError(ReproError, ValueError):
    """A cloud resource configuration or catalog entry is invalid."""


class PruningError(ReproError, ValueError):
    """A pruning specification is invalid (bad ratio, unknown layer, ...)."""


class CalibrationError(ReproError, ValueError):
    """Calibration constants are missing or inconsistent for a model."""


class InfeasibleError(ReproError, RuntimeError):
    """No resource allocation satisfies the given deadline/budget."""


class MeasurementError(ReproError, RuntimeError):
    """A measurement run failed or produced no samples."""

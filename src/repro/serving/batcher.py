"""Batch-forming policy for the serving simulator.

GPU inference throughput depends on batch width (the paper's Figure 5),
but online requests arrive one at a time — so a server must trade
queueing delay for batch efficiency.  :class:`BatchPolicy` captures the
standard policy: dispatch when either ``max_batch`` requests are waiting
or the oldest has waited ``max_wait_s``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["BatchPolicy", "PendingQueue"]


@dataclass(frozen=True)
class BatchPolicy:
    """When to close a batch.

    Attributes
    ----------
    max_batch:
        Never dispatch more than this many requests in one batch
        (bounded by the device's memory-limited batch size).
    max_wait_s:
        Dispatch a partial batch once its oldest request has waited this
        long, even if the batch is not full.  ``0`` means dispatch
        immediately whenever a GPU is free (lowest latency, worst
        efficiency).
    """

    max_batch: int
    max_wait_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")


@dataclass
class PendingQueue:
    """FIFO of (request id, arrival time) awaiting dispatch."""

    _queue: deque = field(default_factory=deque)

    def push(self, request_id: int, arrival_s: float) -> None:
        """Enqueue one request in arrival order."""
        self._queue.append((request_id, arrival_s))

    def __len__(self) -> int:
        return len(self._queue)

    def oldest_arrival(self) -> float:
        """Arrival time of the head request (raises when empty)."""
        if not self._queue:
            raise IndexError("empty queue")
        return self._queue[0][1]

    def should_dispatch(self, now: float, policy: BatchPolicy) -> bool:
        """Is a batch ready under ``policy`` at time ``now``?

        The wait comparison carries a 1 ns epsilon: a timeout event
        scheduled at ``arrival + max_wait`` must satisfy the test at its
        own timestamp despite float rounding (``1.2 - 1.0 < 0.2`` in
        binary floating point), otherwise the timer re-arms forever.
        """
        if not self._queue:
            return False
        if len(self._queue) >= policy.max_batch:
            return True
        return now - self.oldest_arrival() >= policy.max_wait_s - 1e-9

    def take(self, n: int) -> list[tuple[int, float]]:
        """Remove and return up to ``n`` oldest requests."""
        out = []
        while self._queue and len(out) < n:
            out.append(self._queue.popleft())
        return out

    def requeue(self, request_id: int, arrival_s: float) -> None:
        """Re-admit a preempted request at its arrival-order position.

        The queue stays sorted by arrival time, so the max-wait timer
        and timeout purges keep seeing the genuinely oldest request at
        the head.  Requeued requests are older than almost everything
        queued, so the scan from the head is short.
        """
        i = 0
        while i < len(self._queue) and self._queue[i][1] <= arrival_s:
            i += 1
        self._queue.insert(i, (request_id, arrival_s))

"""Fully-connected layers and the flatten adapter.

Caffenet's classifier is fc1 (4096), fc2 (4096), fc3 (1000); Googlenet has a
single 1000-way linear classifier after global average pooling.  The paper's
Figure 3 shows these layers contribute little inference time despite their
parameter count — they do a single GEMV per image with no convolutional
reuse — which the stats protocol here captures (high ``weight_bytes``,
comparatively low ``flops``).
"""

from __future__ import annotations

import numpy as np

from repro.cnn.layers import DTYPE, ITEMSIZE, Layer, LayerStats, WeightedLayer
from repro.errors import ShapeError

__all__ = ["DenseLayer", "Flatten"]


class Flatten(Layer):
    """Collapse ``(n, c, h, w)`` activations to ``(n, c*h*w)`` vectors."""

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        size = 1
        for d in input_shape:
            size *= d
        return (size,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x.reshape(x.shape[0], -1))

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        size = self.output_shape(input_shape)[0]
        return LayerStats(
            flops=0,
            input_bytes=size * ITEMSIZE,
            output_bytes=size * ITEMSIZE,
            weight_bytes=0,
            params=0,
        )


class DenseLayer(WeightedLayer):
    """Affine layer ``y = W x + b`` with ``W`` of shape ``(out, in)``."""

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if in_features < 1 or out_features < 1:
            raise ShapeError(f"{name}: features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        # scale before the cast: a float64 scalar would silently promote
        # the whole array back to float64
        self.weights = (
            rng.standard_normal((out_features, in_features)) * scale
        ).astype(DTYPE)
        self.bias = np.zeros(out_features, dtype=DTYPE)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ShapeError(
                f"{self.name}: expected ({self.in_features},) input, "
                f"got {input_shape}"
            )
        return (self.out_features,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._require_rank(x, 2)
        if x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected {self.in_features} features, "
                f"got {x.shape[1]}"
            )
        return x @ self.weights.T + self.bias

    def stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        self.output_shape(input_shape)  # validates
        flops = 2 * self.in_features * self.out_features
        return LayerStats(
            flops=flops,
            input_bytes=self.in_features * ITEMSIZE,
            output_bytes=self.out_features * ITEMSIZE,
            weight_bytes=(self.weights.size + self.bias.size) * ITEMSIZE,
            params=self.weights.size + self.bias.size,
        )

    def effective_stats(self, input_shape: tuple[int, ...]) -> LayerStats:
        dense = self.stats(input_shape)
        d = self.density()
        return LayerStats(
            flops=int(round(dense.flops * d)),
            input_bytes=dense.input_bytes,
            output_bytes=dense.output_bytes,
            weight_bytes=(self.nnz() + self.bias.size) * ITEMSIZE,
            params=dense.params,
        )

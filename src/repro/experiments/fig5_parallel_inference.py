"""Figure 5: total time vs number of parallel inferences on one GPU.

Paper result: on a p2.xlarge (K80), total time for the 50 000-image
workload falls steadily with the number of parallel inferences and
"saturates around 300", after which additional parallelism buys little.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.caffenet import caffenet_time_model
from repro.calibration.googlenet import googlenet_time_model
from repro.experiments.report import format_table
from repro.perf.device import K80
from repro.pruning.base import PruneSpec

__all__ = ["Fig5Result", "run", "render", "DEFAULT_BATCHES"]

DEFAULT_BATCHES: tuple[int, ...] = (
    1, 2, 5, 10, 25, 50, 100, 150, 200, 300, 400, 600, 800,
    1000, 1200, 1400, 1600, 1800, 2000,
)


@dataclass(frozen=True)
class Fig5Result:
    """Total seconds for the 50k workload per parallel-inference count."""

    batches: tuple[int, ...]
    caffenet_s: tuple[float, ...]
    googlenet_s: tuple[float, ...]
    caffenet_knee: int
    googlenet_knee: int

    def saturation_ratio(self, series: str = "caffenet") -> float:
        """Remaining improvement available past the 300-inference knee."""
        ys = self.caffenet_s if series == "caffenet" else self.googlenet_s
        at_knee = float(np.interp(300, self.batches, ys))
        return (at_knee - ys[-1]) / ys[-1]


def run(
    images: int = 50_000, batches: tuple[int, ...] = DEFAULT_BATCHES
) -> Fig5Result:
    spec = PruneSpec.unpruned()
    caffe_bm = caffenet_time_model().batching_model(spec, K80)
    google_bm = googlenet_time_model().batching_model(spec, K80)
    caffe = tuple(caffe_bm.total_time(images, b) for b in batches)
    google = tuple(google_bm.total_time(images, b) for b in batches)
    return Fig5Result(
        batches=tuple(batches),
        caffenet_s=caffe,
        googlenet_s=google,
        caffenet_knee=caffe_bm.knee_batch(),
        googlenet_knee=google_bm.knee_batch(),
    )


def render(result: Fig5Result | None = None) -> str:
    result = result or run()
    rows = [
        (b, f"{c:.0f}", f"{g:.0f}")
        for b, c, g in zip(
            result.batches, result.caffenet_s, result.googlenet_s
        )
    ]
    table = format_table(
        ["Parallel inferences", "Caffenet (s)", "Googlenet (s)"], rows
    )
    return (
        table
        + f"\nsaturation knee: caffenet={result.caffenet_knee}, "
        f"googlenet={result.googlenet_knee} parallel inferences"
    )

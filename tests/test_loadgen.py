"""The open-loop load harness (``repro.service.loadgen``).

Mixture determinism, report arithmetic, harness validation, and one
real in-process run over a small grid (statuses, counters and the
cache delta all deterministic for a fixed seed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ApiError
from repro.service import (
    TRANSPORT_ERROR_STATUS,
    HttpTarget,
    InProcessTarget,
    LoadReport,
    PlanMixture,
    run_load,
)

SMALL = dict(
    catalog=("p2.16xlarge", "p2.8xlarge"),
    instances_per_type=2,
    seed=17,
)


class TestPlanMixture:
    def test_trace_is_deterministic_for_a_seed(self):
        mixture = PlanMixture(**SMALL)
        assert mixture.requests(25) == PlanMixture(**SMALL).requests(25)

    def test_different_seed_different_trace(self):
        a = PlanMixture(**{**SMALL, "seed": 1}).requests(25)
        b = PlanMixture(**{**SMALL, "seed": 2}).requests(25)
        assert a != b

    def test_mixture_spans_all_query_kinds(self):
        requests = PlanMixture(**SMALL).requests(60)
        kinds = {
            (r.deadline_h is not None, r.budget is not None)
            for r in requests
        }
        # min-budget, min-deadline and frontier all appear
        assert (True, False) in kinds or (True, True) in kinds
        assert (False, True) in kinds
        assert (False, False) in kinds

    def test_grid_fields_are_shared_across_the_trace(self):
        requests = PlanMixture(**SMALL).requests(10)
        grids = {
            (r.model, r.images, r.instances_per_type, r.catalog)
            for r in requests
        }
        assert len(grids) == 1


class TestLoadReport:
    def _report(self) -> LoadReport:
        return LoadReport(
            requests=4,
            wall_s=2.0,
            latencies_s=np.array([0.1, 0.2, 0.3, 0.4]),
            status_counts={200: 2, 422: 1, 500: 1},
            cache_hits=3,
            cache_misses=1,
        )

    def test_arithmetic(self):
        report = self._report()
        assert report.qps == 2.0
        assert report.ok == 2
        assert report.errors == 1  # 422 is a valid planning outcome
        assert report.cache_hit_ratio == 0.75
        assert report.p50 == pytest.approx(0.25)

    def test_summary_is_json_ready(self):
        import json

        summary = self._report().summary()
        json.dumps(summary)
        assert summary["errors"] == 1
        assert summary["status"] == {"200": 2, "422": 1, "500": 1}
        assert summary["p99_ms"] == pytest.approx(397.0)

    def test_render_mentions_the_headlines(self):
        text = self._report().render()
        assert "qps" in text and "p99" in text and "hit ratio" in text


class TestRunLoad:
    def test_exactly_one_volume_argument(self):
        mixture = PlanMixture(**SMALL)
        with pytest.raises(ApiError):
            run_load(InProcessTarget(), mixture, rate_per_s=10.0)
        with pytest.raises(ApiError):
            run_load(
                InProcessTarget(),
                mixture,
                rate_per_s=10.0,
                duration_s=1.0,
                n_requests=5,
            )

    def test_bad_arrival_and_rate_rejected(self):
        mixture = PlanMixture(**SMALL)
        with pytest.raises(ApiError, match="arrival"):
            run_load(
                InProcessTarget(),
                mixture,
                rate_per_s=10.0,
                duration_s=1.0,
                arrival="lumpy",
            )
        with pytest.raises(ApiError, match="rate"):
            run_load(
                InProcessTarget(), mixture, rate_per_s=0.0, duration_s=1.0
            )

    def test_in_process_run_is_clean_and_cache_backed(self):
        from repro.api import clear_api_caches

        clear_api_caches()
        report = run_load(
            InProcessTarget(),
            PlanMixture(**SMALL),
            rate_per_s=400.0,
            n_requests=40,
            arrival="uniform",
            max_workers=4,
        )
        assert report.requests == 40
        assert report.errors == 0
        assert set(report.status_counts) <= {200, 422}
        # the whole trace shares one grid: one cold evaluation at most
        assert report.cache_misses <= 1
        assert report.cache_hits + report.cache_misses == 40
        assert report.latencies_s.shape == (40,)
        clear_api_caches()

    def test_transport_failure_is_a_status_not_a_crash(self):
        # nothing listens on this port: the connection is refused, and
        # the harness must record that as an error status, not raise
        target = HttpTarget("http://127.0.0.1:9", timeout_s=0.5)
        assert target.send(b"{}") == TRANSPORT_ERROR_STATUS
        report = LoadReport(
            requests=1,
            wall_s=1.0,
            latencies_s=np.array([0.1]),
            status_counts={TRANSPORT_ERROR_STATUS: 1},
            cache_hits=0,
            cache_misses=0,
        )
        assert report.errors == 1

    def test_n_requests_pins_the_trace_length_for_any_arrival(self):
        report = run_load(
            InProcessTarget(),
            PlanMixture(**SMALL),
            rate_per_s=400.0,
            n_requests=30,
            arrival="poisson",
            seed=3,
            max_workers=4,
        )
        assert report.requests == 30

"""Machine-readable export of experiment results.

``python -m repro.experiments.export <directory>`` regenerates every
artefact and writes, per artefact, a ``.txt`` (the rendered table) and a
``.json`` (title + text + metadata), plus an ``index.json`` manifest —
the format downstream tooling (plots, CI diffs of reproduction numbers)
consumes.  CSV writers are provided for the series-shaped figures.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

from repro.experiments.engine import REGISTRY, run_experiments

__all__ = ["export_all", "write_csv_series", "main"]


def write_csv_series(
    path: str | os.PathLike,
    headers: list[str],
    rows: list[tuple],
) -> None:
    """One figure series as CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def _figure_csv_rows() -> dict[str, tuple[list[str], list[tuple]]]:
    """Series data for the figures that are natural CSV tables."""
    from repro.experiments import (
        fig4_single_inference,
        fig5_parallel_inference,
        fig8_multilayer,
        fig11_tar,
        fig12_car,
    )

    out: dict[str, tuple[list[str], list[tuple]]] = {}
    r4 = fig4_single_inference.run()
    out["fig4"] = (
        ["prune_ratio", "caffenet_s", "googlenet_s"],
        list(zip(r4.ratios, r4.caffenet_s, r4.googlenet_s)),
    )
    r5 = fig5_parallel_inference.run()
    out["fig5"] = (
        ["parallel_inferences", "caffenet_s", "googlenet_s"],
        list(zip(r5.batches, r5.caffenet_s, r5.googlenet_s)),
    )
    r8 = fig8_multilayer.run()
    out["fig8"] = (
        ["configuration", "time_min", "top1", "top5"],
        [(r.name, r.time_min, r.top1, r.top5) for r in r8.rows],
    )
    r11 = fig11_tar.run()
    out["fig11"] = (
        ["degree", "time_min", "top1", "top5", "tar_top1", "tar_top5"],
        [
            (p.label, p.time_min, p.top1, p.top5, p.tar_top1, p.tar_top5)
            for p in r11.points
        ],
    )
    r12 = fig12_car.run()
    out["fig12"] = (
        [
            "instance",
            "category",
            "car_all_top1",
            "car_all_top5",
            "car_one_top1",
            "car_one_top5",
        ],
        [
            (
                r.instance,
                r.category,
                r.car_all_gpus_top1,
                r.car_all_gpus_top5,
                r.car_one_gpu_top1,
                r.car_one_gpu_top5,
            )
            for r in r12.rows
        ],
    )
    return out


def export_all(
    directory: str | os.PathLike,
    only: tuple[str, ...] | None = None,
    *,
    jobs: int = 1,
) -> list[str]:
    """Regenerate artefacts into ``directory``; returns written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    run = run_experiments(only, jobs=jobs, write_manifest=False)
    manifest = []
    for output in run.results:
        txt_path = directory / f"{output.artefact}.txt"
        txt_path.write_text(output.text + "\n")
        written.append(str(txt_path))
        json_path = directory / f"{output.artefact}.json"
        json_path.write_text(
            json.dumps(
                {
                    "artefact": output.artefact,
                    "title": output.title,
                    "category": output.category,
                    "status": output.status,
                    "text": output.text,
                    "data": output.data,
                },
                indent=2,
            )
            + "\n"
        )
        written.append(str(json_path))
        manifest.append(
            {
                "artefact": output.artefact,
                "title": output.title,
                "status": output.status,
            }
        )
    wanted = set(only) if only is not None else None
    for name, (headers, rows) in _figure_csv_rows().items():
        if wanted is not None and name not in wanted:
            continue
        csv_path = directory / f"{name}.csv"
        write_csv_series(csv_path, headers, rows)
        written.append(str(csv_path))
    index = directory / "index.json"
    index.write_text(json.dumps(manifest, indent=2) + "\n")
    written.append(str(index))
    return written


def main() -> None:  # pragma: no cover - CLI convenience
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "results"
    only = tuple(sys.argv[2:]) or None
    bad = [i for i in only or () if i not in REGISTRY]
    if bad:
        raise SystemExit(f"unknown artefacts: {bad}")
    for path in export_all(target, only):
        print(path)


if __name__ == "__main__":  # pragma: no cover
    main()

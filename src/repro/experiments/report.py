"""Plain-text table rendering for experiment outputs.

Benchmarks and EXPERIMENTS.md need aligned, diff-friendly text — no
plotting dependencies are available offline, and the paper's "rows and
series" are what we compare against anyway.

:func:`build_markdown_report` assembles the Markdown experiment report
directly from structured :class:`~repro.experiments.engine.ExperimentResult`
objects (and optionally the run manifest) instead of re-parsing rendered
text.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "format_table",
    "format_kv",
    "format_series",
    "build_markdown_report",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Monospace-aligned table with a header rule."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_kv(pairs: Sequence[tuple[str, object]]) -> str:
    """Aligned ``key: value`` block."""
    width = max(len(k) for k, _ in pairs) if pairs else 0
    return "\n".join(f"{k.ljust(width)} : {_fmt(v)}" for k, v in pairs)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object]
) -> str:
    """One figure series as two aligned columns."""
    rows = list(zip(xs, ys))
    return f"# {name}\n" + format_table(["x", "y"], rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def build_markdown_report(results, manifest=None) -> str:
    """Markdown report from structured experiment results.

    ``results`` is a sequence of
    :class:`~repro.experiments.engine.ExperimentResult`; ``manifest``
    (a :class:`~repro.obs.RunManifest`) adds the run-summary table with
    per-artefact timing and cache provenance.
    """
    lines = ["# Experiment report", ""]
    if manifest is not None:
        lines += [
            f"Run: jobs={manifest.jobs}, cache="
            f"{'on' if manifest.use_cache else 'off'}, "
            f"wall {manifest.wall_s:.2f}s, "
            f"{len(manifest.errors)} error(s).",
            "",
            "| Artefact | Status | Wall (s) | Cache |",
            "| --- | --- | --- | --- |",
        ]
        for rec in manifest.records:
            lines.append(
                f"| {rec.artefact} | {rec.status} | "
                f"{rec.wall_s:.3f} | "
                f"{'hit' if rec.cache_hit else 'miss'} |"
            )
        lines.append("")
    by_category: dict[str, list] = {}
    for result in results:
        by_category.setdefault(result.category, []).append(result)
    for category, members in by_category.items():
        lines += [f"## {category}", ""]
        for result in members:
            lines += [f"### {result.artefact}: {result.title}", ""]
            if result.status == "error":
                lines += [
                    "Status: **error**",
                    "",
                    "```",
                    (result.error or "").rstrip(),
                    "```",
                    "",
                ]
            else:
                lines += ["```", result.text.rstrip(), "```", ""]
    return "\n".join(lines).rstrip() + "\n"

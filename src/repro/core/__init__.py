"""The paper's primary contribution: cost-accuracy analysis machinery.

* :mod:`repro.core.metrics` — TAR and CAR (Section 3.5);
* :mod:`repro.core.pareto` — Pareto-frontier filtering (Section 3.4);
* :mod:`repro.core.config_space` — resource-configuration enumeration;
* :mod:`repro.core.sweet_spot` — sweet-spot region detection (Obs. 1);
* :mod:`repro.core.evalspace` — the unified, memoized (degree x
  configuration) evaluation space behind every figure and planner query;
* :mod:`repro.core.allocation` — Algorithm 1 (TAR/CAR greedy) and the
  exponential brute-force baseline it replaces;
* :mod:`repro.core.pipeline` — the end-to-end three-stage approach of
  the paper's Figure 2.

Re-exports resolve lazily (PEP 562): leaf modules such as
:mod:`repro.core.metrics` stay importable from the cloud layer without
dragging in :mod:`repro.core.allocation` (which itself imports the cloud
simulator) — that is what keeps the core <-> cloud import graph acyclic.
"""

from __future__ import annotations

__all__ = [
    "AllocationResult",
    "ConfigurationPoint",
    "CostAccuracyPipeline",
    "EvaluatedSpace",
    "ParetoPoint",
    "SpaceSpec",
    "SweetSpotRegion",
    "brute_force_allocate",
    "car",
    "clear_space_cache",
    "enumerate_configurations",
    "evaluate",
    "find_sweet_spot",
    "greedy_allocate",
    "pareto_front",
    "pareto_indices",
    "tar",
]

#: name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "AllocationResult": "repro.core.allocation",
    "brute_force_allocate": "repro.core.allocation",
    "greedy_allocate": "repro.core.allocation",
    "enumerate_configurations": "repro.core.config_space",
    "EvaluatedSpace": "repro.core.evalspace",
    "SpaceSpec": "repro.core.evalspace",
    "clear_space_cache": "repro.core.evalspace",
    "evaluate": "repro.core.evalspace",
    "car": "repro.core.metrics",
    "tar": "repro.core.metrics",
    "ParetoPoint": "repro.core.pareto",
    "pareto_front": "repro.core.pareto",
    "pareto_indices": "repro.core.pareto",
    "ConfigurationPoint": "repro.core.pipeline",
    "CostAccuracyPipeline": "repro.core.pipeline",
    "SweetSpotRegion": "repro.core.sweet_spot",
    "find_sweet_spot": "repro.core.sweet_spot",
}


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))

"""Columnar serving engine: the event loop at batch granularity.

The per-event engine (:meth:`ServingSimulator._run`) costs O(requests)
Python iterations — one heap push/pop plus one dispatch pass per
arrival — which caps bench scenarios at ~10⁴ requests.  This engine
replays the *identical* simulation in O(batches + structural events):

* Arrivals live in one sorted float column; request ids are indices
  into it.  An arrival "event" is an index increment, and a run of
  arrivals that cannot change any decision is absorbed with a single
  binary search instead of one loop iteration each.
* The pending queue is a :class:`~repro.serving.batcher.ColumnQueue`:
  a contiguous window ``[head, end)`` of that column plus the rare
  preemption-requeued stragglers.  Taking a full batch moves ``head``.
* Only *structural* events — batch completions, max-wait timers,
  preemptions, recoveries — go through a heap, and there are O(batches
  + faults) of them.
* Nothing per-request happens inside the loop at all: batch outcomes
  are buffered as (time, lo, hi) segment records and the request
  columns (latency, status) plus telemetry ingestion are filled in a
  handful of vectorised scatter operations after the loop ends.

Exactness is the contract, not an aspiration: every decision the
per-event loop makes is re-made here with the same floats in the same
order, so reports (and telemetry state) are **bit-identical** — the
property ``tests/test_columnar.py`` sweeps seeds × fault plans × batch
policies to pin down.  The key arguments:

* Between two structural events only arrivals happen.  With no free
  worker nothing can dispatch and no timer can arm, so the whole run
  collapses to ``end = j`` plus a timeout purge; with free workers, a
  run absorbs arrivals up to (exclusive) the first one that fills a
  batch, satisfies the max-wait test, or expires the queue head —
  found by binary search *on the engine's own float predicates*
  (``t - oldest >= max_wait - 1e-9`` etc.), never on rearranged
  arithmetic, so the boundary lands on exactly the event the scalar
  loop would act on.  Both predicates are monotone in the arrival
  index, so one comparison against the window's last arrival decides
  whether the search needs to run at all.
* The head-first timeout purge is monotone (older requests expire
  first and stay expired), so purging lazily at the next decision
  point drops exactly the requests the per-event loop drops; the
  per-drop *timestamps* the SLO monitor needs are recovered by binary
  searching each dropped request's first qualifying event time.
* Same-timestamp ordering is inherited from the heap's ``(time, seq)``
  total order: arrivals hold sequence numbers ``0..n-1``, structural
  events count up from ``n`` in push order — exactly the numbers the
  per-event :class:`~repro.serving.events.EventQueue` would assign —
  so arrivals still beat a completion that lands on the same float.
* Deferring the latency/status writes is safe because each request is
  finalised at most once (served requests never re-enter the queue,
  dropped requests leave it for good), so the scatter order is
  immaterial; the *telemetry* stream, whose float accumulation order
  does matter, is rebuilt in exact chunk order before ingestion.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right

import numpy as np

from repro.cloud.faults import FaultPlan
from repro.cloud.pricing import hourly_rate_cost
from repro.obs import get_metrics
from repro.serving.batcher import ColumnQueue

__all__ = ["columnar_run"]


# batch-time tables are pure functions of the (frozen, hashable)
# batching model and the worker capacity, so they are shared process-
# wide across runs; entries are tiny (cap + 1 floats)
_BATCH_TABLE_CACHE: dict[tuple, list[float]] = {}


def _batch_tables(workers):
    """Per-worker ``batch_time`` lookup tables (index = batch width).

    ``BatchingModel`` is a frozen value dataclass, so workers sharing a
    device share one table; ``batch_time`` is pure, so precomputing it
    yields the same floats the per-event loop computes per dispatch.
    """
    per_worker: list[list[float]] = []
    caps: list[int] = []
    for batching, cap in workers:
        key = (batching, cap)
        table = _BATCH_TABLE_CACHE.get(key)
        if table is None:
            table = [0.0]
            table += [batching.batch_time(k) for k in range(1, cap + 1)]
            _BATCH_TABLE_CACHE[key] = table
        per_worker.append(table)
        caps.append(cap)
    return per_worker, caps


def columnar_run(sim, arrivals: np.ndarray, plan: FaultPlan, telemetry=None):
    """Run one serving simulation columnar; bit-identical to ``_run``.

    ``sim`` is the :class:`~repro.serving.simulator.ServingSimulator`
    (the engine reads its worker pool, policy and billing inputs);
    ``arrivals`` is the validated sorted float array.  Returns the
    same :class:`~repro.serving.simulator.ServingReport` the per-event
    engine returns, byte for byte, and leaves ``telemetry`` (when
    given) in the same state.
    """
    from repro.serving.simulator import ServingReport, _DROPPED, _SERVED

    arr = arrivals
    n = arr.size
    arrl: list[float] = arr.tolist()
    policy = sim.policy
    max_batch = policy.max_batch
    max_wait = policy.max_wait_s
    wait_eps = max_wait - 1e-9
    tthresh = None if plan.timeout_s is None else plan.timeout_s + 1e-9
    retry_budget = plan.retry_budget
    has_slow = bool(plan.slowdowns)
    pool = len(sim._workers)
    worker_bt, worker_cap = _batch_tables(sim._workers)

    queue = ColumnQueue(arrl)
    rq = queue.requeued  # the one list object, aliased for the hot path
    free: list[int] = list(range(pool))
    batch_sizes: list[int] = []
    busy = 0.0
    timer_at: float | None = None
    now = 0.0
    down: set[int] = set()
    epoch = [0] * pool
    inflight: dict[int, tuple[tuple, float]] = {}
    retry: dict[int, int] = {}
    retries_total = 0
    preempted_total = 0
    events_count = 0

    # structural heap: (time, seq, kind, payload); sequence numbers
    # continue where the arrivals' 0..n-1 leave off, matching the
    # per-event EventQueue's assignment exactly
    heap: list[tuple] = []
    seq = n
    for preemption in plan.preemptions:
        heap.append((preemption.at_s, seq, "preempt", preemption))
        seq += 1
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop
    # the (single) pending max-wait timer lives outside the heap as a
    # (fire_time, seq) pair — arming and firing it are the two most
    # frequent structural operations, and a scalar slot beats heap
    # traffic.  A second concurrent timer (possible only when a
    # preemption requeues an older head) spills into the heap, so the
    # global (time, seq) firing order is untouched.
    timer_evt: tuple[float, int] | None = None

    tel = telemetry is not None
    caps_buf: list[int] = []
    depth_buf: list[int] = []
    # ordered outcome record, chunked:
    #   ("s", t, lo, hi)        batch [lo, hi) served at t
    #   ("sx", t, ids, arrs)    served batch containing requeued entries
    #   ("d", t, count)         `count` identical drops at t (tel only)
    # drop *ids* always go straight to dropped_ids; drop chunks exist
    # only to place the records in the telemetry stream
    chunks: list[tuple] = []
    dropped_ids: list[int] = []

    # ------------------------------------------------------------------
    def first_wait(lo: int, hi: int, old: float) -> int:
        """First index in [lo, hi) with ``arrl[i] - old >= wait_eps``."""
        while lo < hi:
            mid = (lo + hi) // 2
            if arrl[mid] - old >= wait_eps:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def first_over(lo: int, hi: int, a: float) -> int:
        """First index in [lo, hi) with ``arrl[i] - a > timeout + eps``."""
        while lo < hi:
            mid = (lo + hi) // 2
            if arrl[mid] - a > tthresh:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------
    def requeue_batch(batch: tuple, t: float) -> None:
        nonlocal retries_total
        lo, hi, ids, arrs = batch
        if ids is None:
            ids = range(lo, hi)
            arrs = arrl[lo:hi]
        for rid, arrival_s in zip(ids, arrs):
            count = retry.get(rid, 0) + 1
            retry[rid] = count
            if count > retry_budget:
                dropped_ids.append(rid)
                if tel:
                    chunks.append(("d", t, 1))
            else:
                retries_total += 1
                queue.requeue(rid, arrival_s)

    def arm_timer(due: float, t: float) -> None:
        """Arm the max-wait timer at ``max(due, t)``, seq-accurately.

        The common case fills the scalar slot; when a timer is already
        pending the earlier (time, seq) pair keeps the slot and the
        other goes through the heap, preserving global firing order.
        """
        nonlocal timer_at, timer_evt, seq
        timer_at = due
        evt = (max(due, t), seq)
        seq += 1
        if timer_evt is None:
            timer_evt = evt
        elif evt < timer_evt:
            heappush(heap, (timer_evt[0], timer_evt[1], "timer", None))
            timer_evt = evt
        else:
            heappush(heap, (evt[0], evt[1], "timer", None))

    def dispatch(
        t: float,
        *,
        # the loop-invariant hot-path names, bound as keyword defaults:
        # locals (LOAD_FAST) beat closure cells on the hottest function
        # in the engine, and none of these rebind after setup
        queue=queue,
        arrl=arrl,
        rq=rq,
        free=free,
        worker_cap=worker_cap,
        worker_bt=worker_bt,
        batch_sizes=batch_sizes,
        caps_buf=caps_buf,
        depth_buf=depth_buf,
        dropped_ids=dropped_ids,
        chunks=chunks,
        inflight=inflight,
        epoch=epoch,
        heap=heap,
        heappush=heappush,
        max_batch=max_batch,
        wait_eps=wait_eps,
        tthresh=tthresh,
        max_wait=max_wait,
        tel=tel,
        has_slow=has_slow,
        plan=plan,
        len=len,
    ) -> None:
        nonlocal busy, timer_at, timer_evt, seq
        # head-first timeout purge; one comparison decides whether the
        # (rare) expiry scan needs to run at all
        if tthresh is not None and (
            (queue.head < queue.end and t - arrl[queue.head] > tthresh)
            or (rq and t - rq[0][1] > tthresh)
        ):
            dropped = queue.expire(t, tthresh)
            if dropped:
                dropped_ids.extend(dropped)
                if tel:
                    chunks.append(("d", t, len(dropped)))
        while free:
            head = queue.head
            if rq:
                q = queue.end - head + len(rq)
                if not q:
                    break
                old = queue.oldest_arrival()
            else:
                q = queue.end - head
                if not q:
                    break
                old = arrl[head]
            if q < max_batch and not (t - old >= wait_eps):
                break
            worker_id = free.pop()
            cap = worker_cap[worker_id]
            if rq:
                batch = queue.take(cap)
                lo, hi, ids, _ = batch
                width = hi - lo if ids is None else len(ids)
            else:
                lo = head
                hi = lo + cap
                if hi > queue.end:
                    hi = queue.end
                queue.head = hi
                batch = (lo, hi, None, None)
                width = hi - lo
            service = worker_bt[worker_id][width]
            if has_slow:
                service = service * plan.slowdown_factor(worker_id, t)
            busy += service
            batch_sizes.append(width)
            if tel:
                caps_buf.append(cap)
                depth_buf.append(queue.end - queue.head + len(rq))
            done_t = t + service
            inflight[worker_id] = (batch, done_t)
            heappush(
                heap, (done_t, seq, "done", (worker_id, batch, epoch[worker_id]))
            )
            seq += 1
        if free and (queue.head < queue.end or rq):
            due = (
                queue.oldest_arrival() if rq else arrl[queue.head]
            ) + max_wait
            if timer_at is None or due < timer_at:
                if timer_evt is None:  # inlined arm_timer fast path
                    timer_at = due
                    timer_evt = (due if due > t else t, seq)
                    seq += 1
                else:
                    arm_timer(due, t)

    # ------------------------------------------------------------------
    INF = float("inf")
    qend = 0  # local mirror of queue.end: only this loop mutates it
    while qend < n or heap or timer_evt is not None:
        fire_timer = False
        if heap:
            h0 = heap[0]
            ts = h0[0]
            if timer_evt is not None:
                te_t = timer_evt[0]
                if te_t < ts or (te_t == ts and timer_evt[1] < h0[1]):
                    ts = te_t
                    fire_timer = True
        elif timer_evt is not None:
            ts = timer_evt[0]
            fire_timer = True
        else:
            ts = INF
        ta = arrl[qend] if qend < n else INF
        if ta <= ts:
            i = qend
            if not free:
                # no dispatch, no timer: absorb every arrival <= ts and
                # apply the timeout purge eagerly over the whole run
                j = bisect_right(arrl, ts)
                events_count += j - i
                queue.end = qend = j
                now = arrl[j - 1]
                if tthresh is not None:
                    head = queue.head
                    n_rq = 0
                    while n_rq < len(rq) and now - rq[n_rq][1] > tthresh:
                        n_rq += 1
                    # expired set = queue prefix (monotone in arrival);
                    # one head comparison gates the (rare) search
                    lo = head
                    if head < j and now - arrl[head] > tthresh:
                        hi = j
                        while lo < hi:
                            mid = (lo + hi) // 2
                            if now - arrl[mid] > tthresh:
                                lo = mid + 1
                            else:
                                hi = mid
                    if lo > head or n_rq:
                        if tel:
                            # each drop lands at its first qualifying
                            # event time inside the absorbed run;
                            # identical records sort stably by it
                            drops: list[float] = []
                            for rid, a in rq[:n_rq]:
                                dropped_ids.append(rid)
                                drops.append(arrl[first_over(i, j, a)])
                            del rq[:n_rq]
                            if lo > head:
                                dropped_ids.extend(range(head, lo))
                                drops += [
                                    arrl[first_over(i, j, a)]
                                    for a in arrl[head:lo]
                                ]
                                queue.head = lo
                            drops.sort()
                            for t_d in drops:
                                chunks.append(("d", t_d, 1))
                        else:
                            for rid, _ in rq[:n_rq]:
                                dropped_ids.append(rid)
                            del rq[:n_rq]
                            if lo > head:
                                dropped_ids.extend(range(head, lo))
                                queue.head = lo
            else:
                head = queue.head
                q = qend - head + len(rq) if rq else qend - head
                trigger = q + 1 >= max_batch
                if q and not trigger:
                    old = queue.oldest_arrival() if rq else arrl[head]
                    trigger = ta - old >= wait_eps or (
                        tthresh is not None and ta - old > tthresh
                    )
                elif not q:
                    trigger = trigger or 0.0 >= wait_eps
                if trigger:
                    # this arrival changes state: run the full per-event
                    # step (push + dispatch) for it alone
                    events_count += 1
                    queue.end = qend = i + 1
                    now = ta
                    dispatch(now)
                else:
                    # absorb arrivals up to the first that fills the
                    # batch, satisfies max-wait, or expires the head;
                    # both float predicates are monotone in the index,
                    # so a comparison against the window's last arrival
                    # decides whether each binary search must run
                    j = bisect_right(arrl, ts)
                    if q:
                        fill = i + (max_batch - q - 1)
                        if fill < j:
                            j = fill
                        if j > i + 1:
                            if arrl[j - 1] - old >= wait_eps:
                                j = first_wait(i + 1, j, old)
                            if (
                                tthresh is not None
                                and arrl[j - 1] - old > tthresh
                            ):
                                j = first_over(i + 1, j, old)
                    else:
                        j = i + 1
                    events_count += j - i
                    queue.end = qend = j
                    now = arrl[j - 1]
                    # every absorbed arrival re-arms the same timer;
                    # only the first can actually push one
                    due = (old if q else ta) + max_wait
                    if timer_at is None or due < timer_at:
                        if timer_evt is None:  # inlined arm_timer fast path
                            timer_at = due
                            timer_evt = (due if due > ta else ta, seq)
                            seq += 1
                        else:
                            arm_timer(due, ta)
        elif fire_timer:
            events_count += 1
            now = timer_evt[0]
            timer_evt = None
            timer_at = None
            dispatch(now)
        else:
            t, _, kind, payload = heappop(heap)
            events_count += 1
            now = t
            if kind == "done":
                worker_id, batch, batch_epoch = payload
                if batch_epoch != epoch[worker_id]:
                    continue  # batch was cancelled by a preemption
                inflight.pop(worker_id, None)
                free.append(worker_id)
                lo, hi, ids, arrs = batch
                if ids is None:
                    chunks.append(("s", now, lo, hi))
                else:
                    chunks.append(("sx", now, ids, arrs))
                # neutral completion: when the queue state cannot purge,
                # dispatch, or re-arm the timer, the dispatch call the
                # per-event loop makes here is a pure no-op — skip it.
                # The tests are the dispatcher's own predicates on the
                # merged-oldest arrival, evaluated exactly.
                head = queue.head
                if head == qend and not rq:
                    continue  # empty queue: dispatch cannot act
                if rq:
                    a0 = rq[0][1]
                    old_h = (
                        a0
                        if head >= qend or a0 < arrl[head]
                        else arrl[head]
                    )
                else:
                    old_h = arrl[head]
                if (
                    qend - head + len(rq) < max_batch
                    and not (now - old_h >= wait_eps)
                    and (tthresh is None or not (now - old_h > tthresh))
                    and timer_at is not None
                    and not (old_h + max_wait < timer_at)
                ):
                    continue
            elif kind == "timer":
                timer_at = None
            elif kind == "preempt":
                preemption = payload
                worker_id = preemption.target % pool
                if worker_id in down:
                    continue  # already out; nothing more to take
                preempted_total += 1
                down.add(worker_id)
                epoch[worker_id] += 1
                if worker_id in free:
                    free.remove(worker_id)
                if worker_id in inflight:
                    batch, done_at = inflight.pop(worker_id)
                    busy -= done_at - now  # the cancelled tail never ran
                    requeue_batch(batch, now)
                if preemption.recover_after_s is not None:
                    heappush(
                        heap,
                        (now + preemption.recover_after_s, seq, "recover", worker_id),
                    )
                    seq += 1
            elif kind == "recover":
                worker_id = payload
                if worker_id in down:
                    down.remove(worker_id)
                    free.append(worker_id)
            dispatch(now)

    get_metrics().counter("serving.events").inc(events_count)

    if tel and batch_sizes:
        # the batch gauges share no state with the latency/SLO side, so
        # deferring them out of the event loop cannot reorder anything
        telemetry.record_batch_stream(batch_sizes, caps_buf, depth_buf)

    # requests still queued when the event horizon ends are dropped;
    # the records are identical so their order is immaterial
    leftover = queue.end - queue.head + len(rq)
    if leftover:
        for rid, _ in rq:
            dropped_ids.append(rid)
        rq.clear()
        if queue.head < queue.end:
            dropped_ids.extend(range(queue.head, queue.end))
            queue.head = queue.end
        if tel:
            chunks.append(("d", now, leftover))

    # ------------------------------------------------------------------
    # Finalise the request columns (and, when attached, the telemetry
    # stream) from the ordered chunk record: one pass to lay out stream
    # positions, then vectorised gather/scatter fills.
    latencies = np.full(n, np.nan)
    status = np.zeros(n, dtype=np.uint8)

    s_t: list[float] = []
    s_lo: list[int] = []
    s_hi: list[int] = []
    s_pos: list[int] = []
    sx_entries: list[tuple[int, float, list, list]] = []
    d_entries: list[tuple[int, float, int]] = []
    total = 0
    for chunk in chunks:
        kind = chunk[0]
        if kind == "s":
            _, t, lo, hi = chunk
            s_t.append(t)
            s_lo.append(lo)
            s_hi.append(hi)
            s_pos.append(total)
            total += hi - lo
        elif kind == "sx":
            _, t, ids, arrs = chunk
            sx_entries.append((total, t, ids, arrs))
            total += len(ids)
        else:
            d_entries.append((total, chunk[1], chunk[2]))
            total += chunk[2]

    stream = tel and total
    if stream:
        times = np.empty(total)
        lats = np.full(total, np.nan)
        dflags = np.zeros(total, dtype=bool)

    if s_lo:
        his = np.asarray(s_hi)
        lens = his - np.asarray(s_lo)
        cum = np.cumsum(lens)
        span = np.arange(int(cum[-1]))
        src = np.repeat(his - cum, lens) + span
        t_rep = np.repeat(np.asarray(s_t), lens)
        served_lat = t_rep - arr[src]  # same elementwise `now - arrival`
        latencies[src] = served_lat
        status[src] = _SERVED
        if stream:
            dest = np.repeat(np.asarray(s_pos) - (cum - lens), lens) + span
            times[dest] = t_rep
            lats[dest] = served_lat
    for pos, t, ids, arrs in sx_entries:
        seg = np.asarray(arrs, dtype=float)
        lat_seg = t - seg
        latencies[ids] = lat_seg
        status[ids] = _SERVED
        if stream:
            times[pos : pos + seg.size] = t
            lats[pos : pos + seg.size] = lat_seg
    if dropped_ids:
        status[dropped_ids] = _DROPPED
    if stream:
        for pos, t, count in d_entries:
            if count == 1:
                times[pos] = t
                dflags[pos] = True
            else:
                times[pos : pos + count] = t
                dflags[pos : pos + count] = True
        telemetry.ingest_stream(times, lats, dflags)

    duration = now  # last event time
    rate = (
        sim.hourly_rate
        if sim.hourly_rate is not None
        else sim.configuration.total_price_per_hour
    )
    cost = hourly_rate_cost(rate, duration)
    return ServingReport(
        requests=n,
        duration_s=duration,
        latencies_s=latencies[status == _SERVED],
        batch_sizes=np.asarray(batch_sizes),
        busy_s=busy,
        worker_count=pool,
        cost=cost,
        accuracy=sim.accuracy_model.accuracy(sim.spec),
        retries=retries_total,
        dropped=len(dropped_ids),
        preempted=preempted_total,
    )

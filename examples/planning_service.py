#!/usr/bin/env python
"""Run the planning control plane and query it programmatically.

The planner is usually a library call (``repro.api.plan``); this
example shows the same queries as a *service*: boot an HTTP server on
a free port, point the typed client at it, plan, inspect health and
metrics, and replay a short seeded load trace against it — all with
the stdlib only.

Run:  python examples/planning_service.py
"""

from repro.api import ApiError, PlanRequest, PlanningClient
from repro.service import HttpTarget, PlanMixture, PlanningServer, run_load

#: a small grid keeps the example snappy; drop ``catalog`` to plan
#: over the full EC2 catalog
GRID = dict(catalog=("p2.16xlarge", "p2.8xlarge"), instances_per_type=2)


def main() -> None:
    with PlanningServer(port=0) as server:  # port 0 = pick a free one
        print(f"service up at {server.url}\n")
        client = PlanningClient(server.url)

        # 1. a planning query over the wire — the same PlanRequest a
        #    library caller would build, the same PlanResponse back
        response = client.plan(
            PlanRequest(target=78.0, deadline_h=6.0, **GRID)
        )
        print(response.render())

        # 2. errors carry stable machine codes, not just prose
        try:
            client.plan(PlanRequest(target=80.0, metric="top1", **GRID))
        except ApiError as exc:
            print(f"\n[{exc.code}] {exc}")

        # 3. liveness + cache occupancy
        health = client.healthz()
        print(f"\nhealthz   : {health['status']}")

        # 4. replay a seeded open-loop trace against the live server
        report = run_load(
            HttpTarget(server.url),
            PlanMixture(seed=17, **GRID),
            rate_per_s=200.0,
            n_requests=100,
            arrival="uniform",
            max_workers=8,
        )
        print()
        print(report.render())

        # 5. every answer above is visible in the OpenMetrics scrape
        scrape = client.metrics()
        for line in scrape.splitlines():
            if line.startswith("repro_service_requests_total"):
                print(f"\nscrape    : {line}")


if __name__ == "__main__":
    main()

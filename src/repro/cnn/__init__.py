"""From-scratch NumPy CNN inference engine.

This subpackage is the substrate standing in for the paper's Caffe (plus
sparse-Caffe fork) deployment.  It provides:

* real forward-pass execution for convolution, pooling, LRN, fully-connected
  and inception layers (:mod:`repro.cnn.layers` et al.);
* exact Caffenet / Googlenet architecture builders matching the paper's
  Table 1 (:mod:`repro.cnn.models`);
* dense and sparsity-aware FLOP / memory-traffic accounting used by the
  GPU latency model (:mod:`repro.cnn.flops`);
* a synthetic procedural dataset and a minimal SGD trainer so that the
  pruning -> accuracy mechanism can be demonstrated end-to-end with *real*
  numbers on small networks (:mod:`repro.cnn.datasets`,
  :mod:`repro.cnn.training`).
"""

from repro.cnn.activations import ReLU, Softmax
from repro.cnn.conv import ConvLayer
from repro.cnn.dense import DenseLayer, Flatten
from repro.cnn.inception import InceptionModule
from repro.cnn.layers import Layer, LayerStats, WeightedLayer
from repro.cnn.models import build_caffenet, build_googlenet, build_small_cnn
from repro.cnn.network import Network
from repro.cnn.normalization import Concat, LocalResponseNorm
from repro.cnn.pooling import AvgPool, GlobalAvgPool, MaxPool

__all__ = [
    "AvgPool",
    "Concat",
    "ConvLayer",
    "DenseLayer",
    "Flatten",
    "GlobalAvgPool",
    "InceptionModule",
    "Layer",
    "LayerStats",
    "LocalResponseNorm",
    "MaxPool",
    "Network",
    "ReLU",
    "Softmax",
    "WeightedLayer",
    "build_caffenet",
    "build_googlenet",
    "build_small_cnn",
]
